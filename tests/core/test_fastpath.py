"""Regression tests for the branch-skipping supernet fast path.

The fast path must be a pure optimization: for exactly-one-hot weights its
output matches (a) the full mixed forward and (b) a warm-started
DerivedModel, while sub-threshold candidate operators are *never invoked*.
"""

import numpy as np
import pytest

from repro.core import DEFAULT_SPACE, FineTuneStrategySpec
from repro.core.search import _spec_to_onehots
from repro.core.supernet import MIX_SKIP_THRESHOLD, DerivedModel, S2PGNNSupernet
from repro.gnn import GNNEncoder
from repro.nn import Tensor


def make_supernet(layers=2, dim=12, tasks=2, **kwargs):
    enc = GNNEncoder("gin", num_layers=layers, emb_dim=dim, dropout=0.0, seed=0)
    return S2PGNNSupernet(enc, DEFAULT_SPACE, num_tasks=tasks, seed=0, **kwargs)


SPECS = [
    FineTuneStrategySpec(identity=("zero_aug", "identity_aug"),
                         fusion="mean", readout="sum"),
    FineTuneStrategySpec(identity=("trans_aug", "zero_aug"),
                         fusion="lstm", readout="set2set"),
    FineTuneStrategySpec(identity=("identity_aug", "identity_aug"),
                         fusion="concat", readout="neural"),
]


class TestFastPathEquivalence:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.describe())
    def test_onehot_fastpath_matches_full_mix(self, batch, spec):
        """Fast path == full mixture for exactly-one-hot weights (atol 1e-9)."""
        net = make_supernet()
        net.eval()
        one_hots = _spec_to_onehots(spec, DEFAULT_SPACE, 2)
        fast = net.forward_full(batch, one_hots)["logits"].data
        net.mix_threshold = None
        full = net.forward_full(batch, one_hots)["logits"].data
        assert np.allclose(fast, full, atol=1e-9)

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.describe())
    def test_onehot_fastpath_matches_derived_model(self, batch, spec):
        """Fast path == warm-started DerivedModel.forward_full (atol 1e-9)."""
        net = make_supernet()
        net.eval()
        one_hots = _spec_to_onehots(spec, DEFAULT_SPACE, 2)
        fast = net.forward_full(batch, one_hots)

        derived = DerivedModel(GNNEncoder("gin", 2, 12, dropout=0.0, seed=5),
                               spec, num_tasks=2, seed=5)
        derived.load_from_supernet(net)
        derived.eval()
        ref = derived.forward_full(batch)
        assert np.allclose(fast["logits"].data, ref["logits"].data, atol=1e-9)
        assert np.allclose(fast["graph"].data, ref["graph"].data, atol=1e-9)

    def test_soft_weights_unaffected_by_threshold(self, batch, rng):
        """All-above-threshold soft mixtures are identical with and without
        the fast path (no branch qualifies for skipping)."""
        net = make_supernet()
        net.eval()
        spec = SPECS[0]
        weights = _spec_to_onehots(spec, DEFAULT_SPACE, 2)
        soft = rng.random(len(DEFAULT_SPACE.readout)) + 0.1
        weights.readout = Tensor(soft / soft.sum())
        fast = net.forward_full(batch, weights)["logits"].data
        net.mix_threshold = None
        full = net.forward_full(batch, weights)["logits"].data
        assert np.array_equal(fast, full)


class TestBranchSkipping:
    def test_zero_weight_branches_never_called(self, batch):
        """Sub-threshold candidates are not even invoked (the fast-path
        contract), checked by booby-trapping every unselected candidate."""
        net = make_supernet()
        net.eval()
        spec = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                                    fusion="last", readout="mean")
        selected = {
            id(net.fusion_bank[DEFAULT_SPACE.fusion.index("last")]),
            id(net.readout_bank[DEFAULT_SPACE.readout.index("mean")]),
        }
        for k in range(2):
            selected.add(id(net.identity_banks[k][DEFAULT_SPACE.identity.index("zero_aug")]))

        def boobytrap(module):
            def fail(*args, **kwargs):
                raise AssertionError("skipped branch was invoked")
            module.forward = fail

        for bank in [net.fusion_bank, net.readout_bank, *net.identity_banks]:
            for module in bank:
                if id(module) not in selected:
                    boobytrap(module)

        one_hots = _spec_to_onehots(spec, DEFAULT_SPACE, 2)
        out = net.forward_full(batch, one_hots)  # must not raise
        assert np.all(np.isfinite(out["logits"].data))

        net.mix_threshold = None  # full mixture calls every branch
        with pytest.raises(AssertionError, match="skipped branch"):
            net.forward_full(batch, one_hots)

    def test_mix_accepts_tensors_and_thunks(self):
        weights = Tensor(np.array([0.0, 1.0]))
        a, b = Tensor(np.ones(3)), Tensor(np.full(3, 2.0))
        out = S2PGNNSupernet._mix(weights, [a, b])
        assert np.array_equal(out.data, b.data)
        out = S2PGNNSupernet._mix(weights, [lambda: a, lambda: b])
        assert np.array_equal(out.data, b.data)

    def test_all_zero_weights_fall_back_to_full_mixture(self):
        weights = Tensor(np.zeros(2))
        a, b = Tensor(np.ones(3)), Tensor(np.full(3, 2.0))
        out = S2PGNNSupernet._mix(weights, [a, b])
        assert np.array_equal(out.data, np.zeros(3))

    def test_threshold_default(self):
        assert make_supernet().mix_threshold == MIX_SKIP_THRESHOLD
