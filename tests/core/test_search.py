"""Tests for the bi-level search algorithm (paper Eq. 15-16)."""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_SPACE,
    S2PGNNSearcher,
    SearchConfig,
    random_search,
)
from repro.gnn import GNNEncoder


def make_encoder(seed=0):
    return GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=seed)


class TestSearchConfig:
    def test_temperature_anneals_geometrically(self):
        cfg = SearchConfig(epochs=5, tau_start=1.0, tau_end=0.1)
        taus = [cfg.temperature(e) for e in range(5)]
        assert taus[0] == pytest.approx(1.0)
        assert taus[-1] == pytest.approx(0.1)
        assert all(a > b for a, b in zip(taus, taus[1:]))

    def test_single_epoch_uses_end_temperature(self):
        assert SearchConfig(epochs=1).temperature(0) == SearchConfig().tau_end


class TestSearcher:
    @pytest.fixture(scope="class")
    def result(self, tiny_dataset):
        searcher = S2PGNNSearcher(
            make_encoder(), tiny_dataset,
            config=SearchConfig(epochs=3, batch_size=16, seed=0),
        )
        return searcher.search()

    def test_returns_valid_spec(self, result):
        spec = result.spec
        assert len(spec.identity) == 2
        assert spec.fusion in DEFAULT_SPACE.fusion
        assert spec.readout in DEFAULT_SPACE.readout

    def test_history_records_every_epoch(self, result):
        assert len(result.history) == 3
        for entry in result.history:
            assert {"epoch", "tau", "train_loss", "alpha_loss", "derived"} <= set(entry)

    def test_train_loss_improves(self, result):
        # Strategy resampling makes per-epoch losses noisy; require the best
        # later epoch to beat the first.
        losses = [h["train_loss"] for h in result.history]
        assert min(losses[1:]) < losses[0] + 0.05

    def test_search_is_deterministic(self, tiny_dataset):
        run = lambda: S2PGNNSearcher(
            make_encoder(), tiny_dataset,
            config=SearchConfig(epochs=2, batch_size=16, seed=5),
        ).search().spec
        assert run() == run()

    def test_seed_changes_trajectory(self, tiny_dataset):
        histories = []
        for seed in (0, 1):
            searcher = S2PGNNSearcher(
                make_encoder(), tiny_dataset,
                config=SearchConfig(epochs=2, batch_size=16, seed=seed),
            )
            histories.append(searcher.search().history[-1]["train_loss"])
        assert histories[0] != histories[1]

    def test_degraded_space_restricts_spec(self, tiny_dataset):
        searcher = S2PGNNSearcher(
            make_encoder(), tiny_dataset,
            space=DEFAULT_SPACE.without_fusion(),
            config=SearchConfig(epochs=2, batch_size=16, seed=0),
        )
        assert searcher.search().spec.fusion == "last"

    def test_evaluate_spec_scores_without_training(self, tiny_dataset, result):
        searcher = S2PGNNSearcher(
            make_encoder(), tiny_dataset,
            config=SearchConfig(epochs=1, batch_size=16, seed=0),
        )
        searcher.search()
        _, valid, _ = tiny_dataset.split()
        score = searcher.evaluate_spec(result.spec, valid)
        assert np.isfinite(score)

    def test_regression_dataset_supported(self, tiny_regression_dataset):
        searcher = S2PGNNSearcher(
            make_encoder(), tiny_regression_dataset,
            config=SearchConfig(epochs=2, batch_size=16, seed=0),
        )
        spec = searcher.search().spec
        assert spec.readout in DEFAULT_SPACE.readout


class TestEvalLoaderReuse:
    def test_eval_batch_size_respected(self, tiny_dataset):
        searcher = S2PGNNSearcher(
            make_encoder(), tiny_dataset,
            config=SearchConfig(epochs=1, eval_batch_size=16, seed=0),
        )
        _, valid, _ = tiny_dataset.split()
        loader = searcher._eval_loader(valid)
        assert loader.batch_size == 16

    def test_evaluate_spec_reuses_one_cached_loader(self, tiny_dataset):
        from repro.core.space import FineTuneStrategySpec

        searcher = S2PGNNSearcher(
            make_encoder(), tiny_dataset,
            config=SearchConfig(epochs=1, batch_size=16, seed=0),
        )
        _, valid, _ = tiny_dataset.split()
        spec_a = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                                      fusion="last", readout="mean")
        spec_b = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                                      fusion="mean", readout="sum")
        searcher.evaluate_spec(spec_a, valid)
        searcher.evaluate_spec(spec_b, valid)
        loader = searcher._eval_loader(valid)
        # Scoring two candidates collated the split exactly once.
        assert loader.num_collations == len(loader)

    def test_cache_batches_false_disables_eval_caching(self, tiny_dataset):
        searcher = S2PGNNSearcher(
            make_encoder(), tiny_dataset,
            config=SearchConfig(epochs=1, cache_batches=False, seed=0),
        )
        _, valid, _ = tiny_dataset.split()
        a = searcher._eval_loader(valid)
        b = searcher._eval_loader(valid)
        # Fresh loader per call: mutations to `valid` are always observed.
        assert a is not b
        assert not a.cache

    def test_eval_loader_cache_bounded(self, tiny_dataset):
        searcher = S2PGNNSearcher(
            make_encoder(), tiny_dataset,
            config=SearchConfig(epochs=1, seed=0),
        )
        train, _, _ = tiny_dataset.split()
        # Genuinely distinct graph sets (different members) stay bounded.
        lists = [train[i:i + 5] for i in range(10)]
        for graphs in lists:
            searcher._eval_loader(graphs)
        assert len(searcher.batch_cache) <= searcher._EVAL_LOADER_CACHE_SIZE

    def test_eval_loader_shared_across_equal_content_lists(self, tiny_dataset):
        """dataset.split() builds a fresh list per call; the registry keys
        by member identity, so every phase still hits one shared loader."""
        searcher = S2PGNNSearcher(
            make_encoder(), tiny_dataset,
            config=SearchConfig(epochs=1, seed=0),
        )
        _, valid_a, _ = tiny_dataset.split()
        _, valid_b, _ = tiny_dataset.split()
        assert valid_a is not valid_b
        assert searcher._eval_loader(valid_a) is searcher._eval_loader(valid_b)


class TestReinitializeTheta:
    def test_draws_fresh_values_not_noise(self, tiny_dataset):
        """The no-weight-sharing ablation must reset candidate weights to
        fresh initializer draws, not add tiny noise to the trained values."""
        searcher = S2PGNNSearcher(
            make_encoder(), tiny_dataset,
            config=SearchConfig(epochs=1, batch_size=16, seed=0),
        )
        # Simulate training drift on a non-encoder parameter.
        name, param = next(
            (n, p) for n, p in searcher.supernet.named_parameters()
            if not n.startswith("encoder.") and p.data.size > 1
        )
        drifted = param.data + 37.0
        param.data = drifted.copy()
        searcher._reinitialize_theta(seed=123)
        # Fresh draw: far from the drifted value (N(0, 0.01) noise was ~0.01
        # away), and exactly what a fresh supernet initializes to.
        assert np.abs(param.data - drifted).max() > 1.0
        from repro.core.supernet import S2PGNNSupernet

        fresh = S2PGNNSupernet(searcher.supernet.encoder, searcher.space,
                               searcher.supernet.num_tasks, seed=123)
        assert np.array_equal(param.data, dict(fresh.named_parameters())[name].data)

    def test_encoder_untouched(self, tiny_dataset):
        searcher = S2PGNNSearcher(
            make_encoder(), tiny_dataset,
            config=SearchConfig(epochs=1, batch_size=16, seed=0),
        )
        before = {n: p.data.copy() for n, p in searcher.supernet.named_parameters()
                  if n.startswith("encoder.")}
        searcher._reinitialize_theta(seed=7)
        for n, p in searcher.supernet.named_parameters():
            if n.startswith("encoder."):
                assert np.array_equal(p.data, before[n])

    def test_deterministic_per_seed(self, tiny_dataset):
        searcher = S2PGNNSearcher(
            make_encoder(), tiny_dataset,
            config=SearchConfig(epochs=1, batch_size=16, seed=0),
        )
        searcher._reinitialize_theta(seed=5)
        after_first = {n: p.data.copy() for n, p in searcher.supernet.named_parameters()}
        searcher._reinitialize_theta(seed=5)
        for n, p in searcher.supernet.named_parameters():
            assert np.array_equal(p.data, after_first[n])


class TestRandomSearch:
    def test_returns_best_of_candidates(self, tiny_dataset):
        spec, score, results = random_search(
            make_encoder, tiny_dataset, num_candidates=3, finetune_epochs=2, seed=0,
        )
        assert len(results) == 3
        assert spec is not None
        assert score == max(s for _, s in results)  # roc_auc: higher better

    def test_random_search_deterministic(self, tiny_dataset):
        a = random_search(make_encoder, tiny_dataset, num_candidates=2,
                          finetune_epochs=1, seed=3)[0]
        b = random_search(make_encoder, tiny_dataset, num_candidates=2,
                          finetune_epochs=1, seed=3)[0]
        assert a == b
