"""Tests for the weight-sharing supernet and derived models."""

import numpy as np
import pytest

from repro.core import DEFAULT_SPACE, FineTuneSpace, FineTuneStrategySpec
from repro.core.controller import SampledStrategy, StrategyController
from repro.core.search import _spec_to_onehots
from repro.core.supernet import DerivedModel, S2PGNNSupernet
from repro.gnn import GNNEncoder
from repro.nn import Tensor


def make_supernet(space=DEFAULT_SPACE, layers=2, dim=12, tasks=2):
    enc = GNNEncoder("gin", num_layers=layers, emb_dim=dim, dropout=0.0, seed=0)
    return S2PGNNSupernet(enc, space, num_tasks=tasks, seed=0)


class TestSupernet:
    def test_forward_shapes(self, batch, rng):
        net = make_supernet()
        controller = StrategyController(DEFAULT_SPACE, 2)
        out = net.forward_full(batch, controller.sample(1.0, rng))
        assert out["logits"].shape == (batch.num_graphs, 2)
        assert len(out["layers"]) == 2

    def test_candidate_banks_sized_by_space(self):
        net = make_supernet()
        assert len(net.identity_banks) == 2
        assert len(net.identity_banks[0]) == 3
        assert len(net.fusion_bank) == 7
        assert len(net.readout_bank) == 6

    def test_degraded_space_shrinks_banks(self):
        net = make_supernet(space=DEFAULT_SPACE.without_fusion())
        assert len(net.fusion_bank) == 1

    def test_onehot_mixing_selects_single_candidate(self, batch):
        """With a one-hot weight vector the mixture equals that candidate."""
        net = make_supernet()
        net.eval()
        spec = FineTuneStrategySpec(
            identity=("zero_aug", "zero_aug"), fusion="mean", readout="sum"
        )
        one_hot = _spec_to_onehots(spec, DEFAULT_SPACE, 2)
        out = net.forward_full(batch, one_hot)

        # Manually compute the same discrete path using the shared modules.
        h = net.encoder.embed_nodes(batch)
        layers = []
        for k in range(2):
            z = net.encoder.layer_step(h, batch, k)
            h = z  # zero_aug
            layers.append(h)
        fused = net.fusion_bank[3](layers)  # mean
        graph = net.readout_bank[0](fused, batch.batch, batch.num_graphs)  # sum
        expected = net.head(graph).data
        assert np.allclose(out["logits"].data, expected)

    def test_soft_mixture_differs_from_endpoints(self, batch):
        net = make_supernet()
        net.eval()
        spec_a = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                                      fusion="last", readout="sum")
        spec_b = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                                      fusion="last", readout="mean")
        out_a = net.forward_full(batch, _spec_to_onehots(spec_a, DEFAULT_SPACE, 2))
        out_b = net.forward_full(batch, _spec_to_onehots(spec_b, DEFAULT_SPACE, 2))
        mixed_weights = _spec_to_onehots(spec_a, DEFAULT_SPACE, 2)
        mixed_weights.readout = Tensor(np.array([0.5, 0.5, 0, 0, 0, 0.0]))
        out_m = net.forward_full(batch, mixed_weights)
        assert np.allclose(
            out_m["graph"].data,
            0.5 * out_a["graph"].data + 0.5 * out_b["graph"].data,
        )

    def test_gradients_flow_only_to_weighted_candidates(self, batch):
        net = make_supernet()
        spec = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                                    fusion="concat", readout="neural")
        out = net.forward_full(batch, _spec_to_onehots(spec, DEFAULT_SPACE, 2))
        out["logits"].sum().backward()
        concat_grads = [p.grad for p in net.fusion_bank[1].parameters()]
        lstm_grads = [p.grad for p in net.fusion_bank[5].parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in concat_grads)
        assert all(g is None or np.abs(g).sum() == 0 for g in lstm_grads)

    def test_theta_parameters_nonempty(self):
        net = make_supernet()
        assert len(net.theta_parameters()) > 0


class TestDerivedModel:
    def test_forward_contract(self, batch):
        enc = GNNEncoder("gin", 2, 12, dropout=0.0, seed=0)
        spec = FineTuneStrategySpec(identity=("identity_aug", "trans_aug"),
                                    fusion="lstm", readout="set2set")
        model = DerivedModel(enc, spec, num_tasks=3)
        out = model.forward_full(batch)
        assert out["logits"].shape == (batch.num_graphs, 3)

    def test_spec_layer_mismatch_raises(self):
        enc = GNNEncoder("gin", 3, 12, dropout=0.0, seed=0)
        spec = FineTuneStrategySpec(identity=("zero_aug",), fusion="last", readout="mean")
        with pytest.raises(ValueError):
            DerivedModel(enc, spec, num_tasks=1)

    def test_vanilla_spec_matches_prediction_model(self, batch):
        """DerivedModel(last+mean+zero_aug) must equal the vanilla model."""
        from repro.gnn import GraphPredictionModel

        enc = GNNEncoder("gin", 2, 12, dropout=0.0, seed=0)
        spec = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                                    fusion="last", readout="mean")
        derived = DerivedModel(enc, spec, num_tasks=1, seed=9)
        vanilla = GraphPredictionModel(enc, num_tasks=1, fusion="last",
                                       readout="mean", seed=9)
        # Align the fresh heads, then outputs must agree exactly.
        vanilla.head.weight.data = derived.head.weight.data.copy()
        vanilla.head.bias.data = derived.head.bias.data.copy()
        derived.eval(), vanilla.eval()
        assert np.allclose(derived(batch).data, vanilla(batch).data)

    def test_all_spec_combinations_forward(self, batch):
        enc = GNNEncoder("gin", 1, 12, dropout=0.0, seed=0)
        for ident in DEFAULT_SPACE.identity:
            for fuse in DEFAULT_SPACE.fusion:
                for read in DEFAULT_SPACE.readout:
                    spec = FineTuneStrategySpec(identity=(ident,), fusion=fuse, readout=read)
                    model = DerivedModel(enc, spec, num_tasks=1)
                    model.eval()
                    out = model(batch)
                    assert np.all(np.isfinite(out.data)), spec.describe()


class TestWarmStart:
    def test_load_from_supernet_copies_selected_candidates(self, batch):
        from repro.core.supernet import S2PGNNSupernet

        enc_a = GNNEncoder("gin", 2, 12, dropout=0.0, seed=0)
        supernet = S2PGNNSupernet(enc_a, DEFAULT_SPACE, num_tasks=2, seed=0)
        # Perturb the supernet so copies are distinguishable from fresh init.
        for p in supernet.parameters():
            p.data += 0.173

        spec = FineTuneStrategySpec(identity=("trans_aug", "identity_aug"),
                                    fusion="lstm", readout="set2set")
        enc_b = GNNEncoder("gin", 2, 12, dropout=0.0, seed=99)
        derived = DerivedModel(enc_b, spec, num_tasks=2, seed=99)
        derived.load_from_supernet(supernet)

        # Encoder copied exactly.
        for (_, pa), (_, pb) in zip(supernet.encoder.named_parameters(),
                                    derived.encoder.named_parameters()):
            assert np.array_equal(pa.data, pb.data)
        # Selected fusion candidate (lstm = index 5) copied exactly.
        src = dict(supernet.fusion_bank[5].named_parameters())
        for name, p in derived.fusion.named_parameters():
            assert np.array_equal(p.data, src[name].data)
        # Head copied (matching task width).
        assert np.array_equal(derived.head.weight.data, supernet.head.weight.data)

    def test_warm_start_matches_supernet_onehot_forward(self, batch):
        """Derived(spec) warm-started from the supernet must reproduce the
        supernet's one-hot forward for that spec exactly."""
        from repro.core.search import _spec_to_onehots
        from repro.core.supernet import S2PGNNSupernet

        enc = GNNEncoder("gin", 2, 12, dropout=0.0, seed=0)
        supernet = S2PGNNSupernet(enc, DEFAULT_SPACE, num_tasks=1, seed=0)
        supernet.eval()
        spec = FineTuneStrategySpec(identity=("identity_aug", "zero_aug"),
                                    fusion="mean", readout="sum")
        expected = supernet.forward_full(
            batch, _spec_to_onehots(spec, DEFAULT_SPACE, 2)
        )["logits"].data

        derived = DerivedModel(GNNEncoder("gin", 2, 12, dropout=0.0, seed=7),
                               spec, num_tasks=1, seed=7)
        derived.load_from_supernet(supernet)
        derived.eval()
        assert np.allclose(derived(batch).data, expected)

    def test_task_width_mismatch_skips_head(self):
        from repro.core.supernet import S2PGNNSupernet

        enc = GNNEncoder("gin", 2, 12, dropout=0.0, seed=0)
        supernet = S2PGNNSupernet(enc, DEFAULT_SPACE, num_tasks=3, seed=0)
        spec = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                                    fusion="last", readout="mean")
        derived = DerivedModel(GNNEncoder("gin", 2, 12, dropout=0.0, seed=1),
                               spec, num_tasks=5, seed=1)
        derived.load_from_supernet(supernet)  # must not raise
        assert derived.head.weight.shape == (12, 5)
