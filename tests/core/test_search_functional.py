"""Functional test of the bi-level search: does alpha learn real signal?

Constructs a controlled regression dataset whose target is the molecule's
atom count — a quantity a **sum** readout represents trivially and a
**mean** readout cannot (mean pooling is size-invariant).  After searching,
the pipeline must deliver a strategy that beats the vanilla (last+mean)
configuration, demonstrating the mechanism the paper's Table IX ablation
relies on (the readout dimension carries real signal).
"""

import numpy as np
import pytest

from repro.core import SearchConfig
from repro.core.api import FineTuneConfig, S2PGNNFineTuner
from repro.core.space import FineTuneStrategySpec
from repro.finetune import finetune
from repro.gnn import GNNEncoder
from repro.graph import MoleculeGenerator
from repro.graph.datasets import DatasetInfo, MolecularDataset


@pytest.fixture(scope="module")
def size_dataset():
    """Regression target = (standardized) number of atoms."""
    graphs = MoleculeGenerator(num_scaffolds=10, seed=31).generate_many(150)
    sizes = np.array([g.num_nodes for g in graphs], dtype=np.float64)
    targets = (sizes - sizes.mean()) / (sizes.std() + 1e-9)
    for g, y in zip(graphs, targets):
        g.y = np.array([y])
    info = DatasetInfo(
        name="sizereg", paper_size=150, num_tasks=1, task_type="regression",
        metric="rmse", domain="synthetic", seed=31,
    )
    return MolecularDataset(info, graphs)


def encoder():
    return GNNEncoder("gin", num_layers=3, emb_dim=16, dropout=0.0, seed=0)


class TestSearchFindsSignal:
    def test_searched_strategy_beats_vanilla_on_size_task(self, size_dataset):
        tuner = S2PGNNFineTuner(
            encoder,
            search_config=SearchConfig(epochs=5, seed=0),
            finetune_config=FineTuneConfig(epochs=10, patience=10),
            seed=0,
        )
        searched = tuner.fit(size_dataset)

        vanilla_spec = FineTuneStrategySpec(
            identity=("zero_aug",) * 3, fusion="last", readout="mean"
        )
        from repro.core.supernet import DerivedModel

        vanilla_model = DerivedModel(encoder(), vanilla_spec, num_tasks=1, seed=0)
        vanilla = finetune(vanilla_model, size_dataset, epochs=10, patience=10, seed=0)

        # RMSE: lower is better. The searched strategy must clearly win —
        # mean pooling cannot express graph size.
        assert searched.test_score < vanilla.test_score, (
            searched.test_score, vanilla.test_score, tuner.best_spec_.describe()
        )
