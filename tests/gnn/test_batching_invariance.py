"""Batching invariance: a graph's prediction must not depend on its batch.

This is the core correctness property of disjoint-union batching — message
passing, fusion, and readout must never leak information across graphs.
(Holds in eval mode; train-mode BatchNorm intentionally couples the batch.)
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn import GNNEncoder, GraphPredictionModel
from repro.graph import Batch, MoleculeGenerator


@pytest.fixture(scope="module")
def pool():
    return MoleculeGenerator(num_scaffolds=6, seed=13).generate_many(20)


def make_model(fusion, readout):
    return GraphPredictionModel(
        GNNEncoder("gin", num_layers=3, emb_dim=12, dropout=0.0, seed=0),
        num_tasks=2, fusion=fusion, readout=readout, seed=0,
    )


@pytest.mark.parametrize("fusion", ["last", "concat", "lstm", "gpr"])
@pytest.mark.parametrize("readout", ["sum", "mean", "set2set", "sort", "neural"])
def test_alone_equals_batched(pool, fusion, readout):
    model = make_model(fusion, readout)
    model.eval()
    target = pool[0]
    alone = model(Batch([target])).data[0]
    batched = model(Batch([pool[1], target, pool[2]])).data[1]
    assert np.allclose(alone, batched, atol=1e-8), (fusion, readout)


@given(
    index=st.integers(0, 19),
    companions=st.lists(st.integers(0, 19), min_size=1, max_size=5),
    seed=st.integers(0, 50),
)
@settings(max_examples=25, deadline=None)
def test_prediction_invariant_to_batch_composition(pool, index, companions, seed):
    model = make_model("mean", "mean")
    model.eval()
    target = pool[index]
    alone = model(Batch([target])).data[0]
    rng = np.random.default_rng(seed)
    others = [pool[i] for i in companions]
    position = int(rng.integers(0, len(others) + 1))
    graphs = others[:position] + [target] + others[position:]
    batched = model(Batch(graphs)).data[position]
    assert np.allclose(alone, batched, atol=1e-8)


def test_batch_order_permutes_outputs(pool):
    """Reordering graphs permutes rows but never changes values."""
    model = make_model("max", "sum")
    model.eval()
    graphs = pool[:5]
    base = model(Batch(graphs)).data
    perm = [3, 1, 4, 0, 2]
    permuted = model(Batch([graphs[i] for i in perm])).data
    assert np.allclose(permuted, base[perm], atol=1e-8)
