"""Differential tests: every conv/readout/fusion candidate under the
plan-backed reduceat kernels must match the legacy ``np.add.at`` backend to
<= 1e-9 in values and parameter/input gradients, and the plan-aware call
path (ctx / node plan) must be bit-identical to the plain-index path.
"""

import numpy as np
import pytest

from repro.gnn import (
    CONV_TYPES,
    FUSION_CANDIDATES,
    READOUT_CANDIDATES,
    make_conv,
    make_fusion,
    make_readout,
)
from repro.graph import Batch
from repro.nn import Tensor, use_backend


def _run_conv(conv, h_data, batch, ctx=None):
    h = Tensor(h_data.copy(), requires_grad=True)
    out = conv(h, batch.edge_index, batch.edge_attr, ctx=ctx)
    out.sum().backward()
    grads = {name: p.grad.copy() for name, p in conv.named_parameters()
             if p.grad is not None}
    conv.zero_grad()
    return out.data.copy(), h.grad.copy(), grads


def _run_readout(readout, h_data, index, num_graphs):
    h = Tensor(h_data.copy(), requires_grad=True)
    out = readout(h, index, num_graphs)
    out.sum().backward()
    grads = {name: p.grad.copy() for name, p in readout.named_parameters()
             if p.grad is not None}
    readout.zero_grad()
    return out.data.copy(), h.grad.copy(), grads


def _assert_close(a, b, tol=1e-9):
    assert np.abs(a - b).max(initial=0.0) <= tol


class TestConvBackendParity:
    @pytest.mark.parametrize("conv_type", CONV_TYPES)
    def test_legacy_vs_reduceat(self, conv_type, batch, rng):
        conv = make_conv(conv_type, 16, np.random.default_rng(1))
        h_data = rng.normal(size=(batch.num_nodes, 16))
        out_new, hg_new, pg_new = _run_conv(conv, h_data, batch, ctx=batch)
        with use_backend("legacy"):
            out_ref, hg_ref, pg_ref = _run_conv(conv, h_data, batch)
        _assert_close(out_new, out_ref)
        _assert_close(hg_new, hg_ref)
        for name in pg_ref:
            _assert_close(pg_new[name], pg_ref[name])

    @pytest.mark.parametrize("conv_type", CONV_TYPES)
    def test_ctx_path_bit_identical(self, conv_type, batch, rng):
        conv = make_conv(conv_type, 16, np.random.default_rng(1))
        h_data = rng.normal(size=(batch.num_nodes, 16))
        with_ctx = _run_conv(conv, h_data, batch, ctx=batch)
        without = _run_conv(conv, h_data, batch, ctx=None)
        assert np.array_equal(with_ctx[0], without[0])
        assert np.array_equal(with_ctx[1], without[1])

    @pytest.mark.parametrize("conv_type", CONV_TYPES)
    def test_zero_edge_batch(self, conv_type, molecules, rng):
        from repro.graph import Graph

        lone = Graph(x=np.array([[1, 0]]), edge_index=np.zeros((2, 0)),
                     edge_attr=np.zeros((0, 2)))
        batch = Batch([lone, lone])
        conv = make_conv(conv_type, 8, np.random.default_rng(2))
        h_data = rng.normal(size=(2, 8))
        out_new = _run_conv(conv, h_data, batch, ctx=batch)
        with use_backend("legacy"):
            out_ref = _run_conv(conv, h_data, batch)
        _assert_close(out_new[0], out_ref[0])
        _assert_close(out_new[1], out_ref[1])


class TestReadoutBackendParity:
    @pytest.mark.parametrize("name", READOUT_CANDIDATES)
    def test_legacy_vs_reduceat(self, name, rng):
        readout = make_readout(name, 8, np.random.default_rng(3))
        ids = np.repeat(np.arange(3), [5, 1, 6])
        h_data = rng.normal(size=(12, 8))
        out_new, hg_new, pg_new = _run_readout(readout, h_data, ids, 3)
        with use_backend("legacy"):
            out_ref, hg_ref, pg_ref = _run_readout(readout, h_data, ids, 3)
        _assert_close(out_new, out_ref)
        _assert_close(hg_new, hg_ref)
        for pname in pg_ref:
            _assert_close(pg_new[pname], pg_ref[pname])

    @pytest.mark.parametrize("name", READOUT_CANDIDATES)
    def test_plan_path_bit_identical(self, name, rng):
        from repro.nn import SegmentPlan

        readout = make_readout(name, 8, np.random.default_rng(3))
        ids = np.repeat(np.arange(4), 3)
        h_data = rng.normal(size=(12, 8))
        plan = SegmentPlan(ids, 4)
        via_plan = _run_readout(readout, h_data, plan, 4)
        via_ids = _run_readout(readout, h_data, ids, 4)
        assert np.array_equal(via_plan[0], via_ids[0])
        assert np.array_equal(via_plan[1], via_ids[1])

    def test_sortpool_selects_topk_padded(self, rng):
        """Vectorized SortPool keeps the per-graph top-k contract: each
        graph's rows ordered by descending sort channel, zero-padded."""
        from repro.gnn.readout import SortPoolReadout
        from repro.nn import gather

        k, d = 3, 4
        readout = SortPoolReadout(d, rng, k=k)
        ids = np.array([0, 0, 0, 0, 1, 1])  # graph 1 has fewer than k nodes
        h_data = np.arange(24, dtype=np.float64).reshape(6, d)
        h_data[:, -1] = [3.0, 9.0, 1.0, 5.0, 2.0, 8.0]
        out = readout(Tensor(h_data), ids, 2)
        # Reconstruct the expected flat layout by hand.
        expect = np.zeros((2, k * d))
        expect[0] = h_data[[1, 3, 0]].reshape(-1)           # top-3 of graph 0
        expect[1, : 2 * d] = h_data[[5, 4]].reshape(-1)     # both nodes, padded
        manual = readout.proj(Tensor(expect)).data
        assert np.allclose(out.data, manual, atol=1e-12)


class TestFusionBackendParity:
    @pytest.mark.parametrize("name", FUSION_CANDIDATES)
    def test_legacy_vs_reduceat(self, name, rng):
        """Fusion candidates sit above the segment layer; the backend swap
        (and the stacked vectorized combine) must not move their values or
        gradients beyond 1e-9."""
        fusion = make_fusion(name, 3, 8, np.random.default_rng(4))
        layer_data = [rng.normal(size=(10, 8)) for _ in range(3)]

        def run():
            layers = [Tensor(d.copy(), requires_grad=True) for d in layer_data]
            out = fusion(layers)
            out.sum().backward()
            grads = [l.grad.copy() if l.grad is not None else None for l in layers]
            pgrads = {n: p.grad.copy() for n, p in fusion.named_parameters()
                      if p.grad is not None}
            fusion.zero_grad()
            return out.data.copy(), grads, pgrads

        out_new, lg_new, pg_new = run()
        with use_backend("legacy"):
            out_ref, lg_ref, pg_ref = run()
        _assert_close(out_new, out_ref)
        for a, b in zip(lg_new, lg_ref):
            assert (a is None) == (b is None)
            if a is not None:
                _assert_close(a, b)
        for pname in pg_ref:
            _assert_close(pg_new[pname], pg_ref[pname])
        # Gradient reaches at least the layers the candidate consumes.
        assert any(g is not None for g in lg_new), name
