"""Finite-difference gradient checks through entire GNN modules.

The unit gradchecks in ``tests/nn`` cover primitives; these verify that the
*composed* adjoints of whole convolution layers, fusion modules, and
readouts are exact with respect to their node-feature inputs — the
gradients the search algorithm actually consumes.
"""

import numpy as np
import pytest

from repro.gnn import make_conv, make_fusion, make_readout
from repro.graph import Batch, MoleculeGenerator
from repro.nn import Tensor
from tests.conftest import gradcheck


@pytest.fixture(scope="module")
def small_batch():
    return Batch(MoleculeGenerator(num_scaffolds=4, seed=21).generate_many(2))


DIM = 6


class TestConvGradients:
    @pytest.mark.parametrize("conv_type", ["gin", "gcn", "sage", "gat"])
    def test_conv_input_gradient_exact(self, conv_type, small_batch):
        rng = np.random.default_rng(3)
        conv = make_conv(conv_type, DIM, rng)
        conv.eval()
        h0 = np.random.default_rng(4).normal(size=(small_batch.num_nodes, DIM))

        def fn(h):
            return (conv(h, small_batch.edge_index, small_batch.edge_attr) ** 2).sum()

        gradcheck(fn, h0.copy(), tol=1e-4)

    def test_gin_eps_gradient_exact(self, small_batch):
        rng = np.random.default_rng(5)
        conv = make_conv("gin", DIM, rng)
        conv.eval()
        h = Tensor(np.random.default_rng(6).normal(size=(small_batch.num_nodes, DIM)))
        out = (conv(h, small_batch.edge_index, small_batch.edge_attr) ** 2).sum()
        out.backward()
        analytic = conv.eps.grad.copy()

        eps = 1e-6
        orig = conv.eps.data.copy()
        conv.eps.data = orig + eps
        hi = (conv(h, small_batch.edge_index, small_batch.edge_attr).data ** 2).sum()
        conv.eps.data = orig - eps
        lo = (conv(h, small_batch.edge_index, small_batch.edge_attr).data ** 2).sum()
        conv.eps.data = orig
        assert abs(analytic[0] - (hi - lo) / (2 * eps)) < 1e-4


class TestFusionGradients:
    @pytest.mark.parametrize("name", ["concat", "max", "mean", "ppr", "lstm", "gpr"])
    def test_fusion_input_gradient_exact(self, name):
        rng = np.random.default_rng(7)
        fusion = make_fusion(name, 3, DIM, rng)
        base = [np.random.default_rng(8 + i).normal(size=(5, DIM)) for i in range(3)]

        # Check gradient with respect to the middle layer's representation.
        def fn(h):
            layers = [Tensor(base[0]), h, Tensor(base[2])]
            return (fusion(layers) ** 2).sum()

        gradcheck(fn, base[1].copy(), tol=1e-4)


class TestReadoutGradients:
    @pytest.mark.parametrize("name", ["sum", "mean", "max", "set2set", "neural"])
    def test_readout_input_gradient_exact(self, name):
        rng = np.random.default_rng(9)
        readout = make_readout(name, DIM, rng)
        h0 = np.random.default_rng(10).normal(size=(7, DIM))
        batch_vec = np.array([0, 0, 0, 1, 1, 1, 1])

        def fn(h):
            return (readout(h, batch_vec, 2) ** 2).sum()

        gradcheck(fn, h0.copy(), tol=1e-4)

    def test_sortpool_gradient_exact_away_from_ties(self):
        # SortPool's selection is discrete; the gradient is exact as long as
        # the perturbation does not change the ordering, so use well-
        # separated sort-channel values.
        rng = np.random.default_rng(11)
        readout = make_readout("sort", DIM, rng)
        h0 = np.random.default_rng(12).normal(size=(6, DIM))
        h0[:, -1] = np.linspace(-3, 3, 6)  # distinct sort keys
        batch_vec = np.array([0, 0, 0, 1, 1, 1])

        def fn(h):
            return (readout(h, batch_vec, 2) ** 2).sum()

        gradcheck(fn, h0.copy(), tol=1e-4)


class TestSupernetMixtureGradients:
    def test_mixture_weight_gradient_exact(self, small_batch):
        """d loss / d (mixing weight) equals the candidate-output difference."""
        from repro.core import DEFAULT_SPACE
        from repro.core.supernet import S2PGNNSupernet
        from repro.core.search import _spec_to_onehots
        from repro.core.space import FineTuneStrategySpec
        from repro.gnn import GNNEncoder

        enc = GNNEncoder("gin", 2, DIM, dropout=0.0, seed=0)
        # Disable branch skipping: the full mixture must have exact
        # gradients in *every* weight, including exactly-zero ones (the
        # fast path intentionally truncates those to zero instead).
        net = S2PGNNSupernet(enc, DEFAULT_SPACE, num_tasks=1, seed=0,
                             mix_threshold=None)
        net.eval()
        spec = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                                    fusion="last", readout="mean")
        weights = _spec_to_onehots(spec, DEFAULT_SPACE, 2)
        w0 = np.array([0.6, 0.4, 0.0, 0.0, 0.0, 0.0])

        def loss_for(w):
            weights.readout = Tensor(w) if not isinstance(w, Tensor) else w
            return net.forward_full(small_batch, weights)["logits"].sum()

        w = Tensor(w0.copy(), requires_grad=True)
        loss_for(w).backward()
        analytic = w.grad.copy()

        eps = 1e-6
        numeric = np.zeros_like(w0)
        for i in range(len(w0)):
            hi = w0.copy(); hi[i] += eps
            lo = w0.copy(); lo[i] -= eps
            numeric[i] = (loss_for(hi).item() - loss_for(lo).item()) / (2 * eps)
        assert np.abs(analytic - numeric).max() < 1e-5

        # Fast path: gradients in the *active* (above-threshold) weights
        # are unchanged; skipped branches contribute exactly zero.
        net.mix_threshold = 1e-8
        w_fast = Tensor(w0.copy(), requires_grad=True)
        loss_for(w_fast).backward()
        active = w0 > 1e-8
        assert np.allclose(w_fast.grad[active], analytic[active])
        assert np.all(w_fast.grad[~active] == 0.0)
