"""Tests for message-passing convolutions: contracts and equivariance."""

import numpy as np
import pytest

from repro.gnn import CONV_TYPES, BondEncoder, make_conv, segment_softmax
from repro.graph import Batch
from repro.nn import Tensor, segment_sum


@pytest.fixture
def mp_inputs(batch, rng):
    h = Tensor(rng.normal(size=(batch.num_nodes, 16)), requires_grad=True)
    return h, batch.edge_index, batch.edge_attr


class TestContracts:
    @pytest.mark.parametrize("conv_type", CONV_TYPES)
    def test_shape_preserved(self, conv_type, mp_inputs, rng):
        conv = make_conv(conv_type, 16, rng)
        h, ei, ea = mp_inputs
        assert conv(h, ei, ea).shape == h.shape

    @pytest.mark.parametrize("conv_type", CONV_TYPES)
    def test_gradient_reaches_input_and_params(self, conv_type, mp_inputs, rng):
        conv = make_conv(conv_type, 16, rng)
        h, ei, ea = mp_inputs
        conv(h, ei, ea).sum().backward()
        assert h.grad is not None and np.abs(h.grad).sum() > 0
        grads = [p.grad for p in conv.parameters() if p.grad is not None]
        assert grads

    @pytest.mark.parametrize("conv_type", CONV_TYPES)
    def test_handles_empty_edges(self, conv_type, rng):
        conv = make_conv(conv_type, 8, rng)
        h = Tensor(rng.normal(size=(4, 8)))
        out = conv(h, np.zeros((2, 0), dtype=np.int64), np.zeros((0, 2), dtype=np.int64))
        assert out.shape == (4, 8)

    def test_unknown_conv_raises(self, rng):
        with pytest.raises(ValueError):
            make_conv("transformer", 8, rng)

    @pytest.mark.parametrize("conv_type", CONV_TYPES)
    def test_permutation_equivariance(self, conv_type, batch, rng):
        """conv(P h) == P conv(h) for a node relabeling P."""
        conv = make_conv(conv_type, 8, rng)
        conv.eval()
        n = batch.num_nodes
        h = Tensor(np.random.default_rng(1).normal(size=(n, 8)))
        out = conv(h, batch.edge_index, batch.edge_attr).data

        perm = np.random.default_rng(2).permutation(n)
        inv = np.argsort(perm)
        h_p = Tensor(h.data[perm])
        ei_p = inv[batch.edge_index]
        out_p = conv(h_p, ei_p, batch.edge_attr).data
        assert np.allclose(out_p, out[perm], atol=1e-8)


class TestGIN:
    def test_eps_balances_self_vs_neighbors(self, batch, rng):
        conv = make_conv("gin", 8, rng)
        h = Tensor(np.random.default_rng(0).normal(size=(batch.num_nodes, 8)))
        base = conv(h, batch.edge_index, batch.edge_attr).data.copy()
        conv.eps.data[:] = 5.0
        boosted = conv(h, batch.edge_index, batch.edge_attr).data
        assert not np.allclose(base, boosted)

    def test_sum_aggregation(self, rng):
        """Two isolated nodes feeding one target: message = sum of both."""
        conv = make_conv("gin", 4, rng)
        h = Tensor(np.ones((3, 4)))
        ei = np.array([[0, 1], [2, 2]])
        ea = np.zeros((2, 2), dtype=np.int64)
        out_two = conv(h, ei, ea).data[2]
        out_one = conv(h, ei[:, :1], ea[:1]).data[2]
        assert not np.allclose(out_two, out_one)


class TestGCN:
    def test_degree_normalization_bounds_output(self, rng):
        conv = make_conv("gcn", 4, rng)
        # A hub node with many neighbors should not blow up.
        n = 30
        h = Tensor(np.ones((n, 4)))
        src = np.arange(1, n)
        ei = np.stack([src, np.zeros_like(src)])
        ei = np.concatenate([ei, ei[::-1]], axis=1)
        ea = np.zeros((ei.shape[1], 2), dtype=np.int64)
        out = conv(h, ei, ea).data
        assert np.all(np.isfinite(out)) and np.abs(out).max() < 100

    def test_output_nonnegative_after_relu(self, mp_inputs, rng):
        conv = make_conv("gcn", 16, rng)
        h, ei, ea = mp_inputs
        assert np.all(conv(h, ei, ea).data >= 0)


class TestSAGE:
    def test_concat_self_and_neighbors(self, rng):
        conv = make_conv("sage", 4, rng)
        assert conv.linear.in_dim == 8


class TestGAT:
    def test_attention_weights_sum_to_one(self, batch, rng):
        scores = Tensor(np.random.default_rng(0).normal(size=batch.num_edges))
        attn = segment_softmax(scores, batch.edge_index[1], batch.num_nodes)
        sums = segment_sum(attn, batch.edge_index[1], batch.num_nodes).data
        targets = np.unique(batch.edge_index[1])
        assert np.allclose(sums[targets], 1.0)

    def test_multi_head_output_width(self, mp_inputs, rng):
        conv = make_conv("gat", 16, rng)
        h, ei, ea = mp_inputs
        assert conv(h, ei, ea).shape == (h.shape[0], 16)

    def test_segment_softmax_stable_for_large_scores(self, rng):
        scores = Tensor(np.array([1000.0, 1001.0, -1000.0]))
        out = segment_softmax(scores, np.array([0, 0, 1]), 2)
        assert np.all(np.isfinite(out.data))


def gat_reference_per_head(conv, h, edge_index, edge_attr):
    """The pre-vectorization GATConv forward: one Python pass per head."""
    from repro.nn import gather

    num_nodes = h.shape[0]
    projected = conv.proj(h)
    bond = conv.bond_encoder(edge_attr)
    head_outputs = []
    for head in range(conv.num_heads):
        hp = projected[:, head * conv.dim:(head + 1) * conv.dim]
        src_feat = gather(hp, edge_index[0]) + bond
        dst_feat = gather(hp, edge_index[1])
        scores = (src_feat * conv.att_src[head]).sum(axis=-1) \
            + (dst_feat * conv.att_dst[head]).sum(axis=-1)
        scores = scores.leaky_relu(conv.negative_slope)
        attn = segment_softmax(scores, edge_index[1], num_nodes)
        weighted = src_feat * attn.reshape(-1, 1)
        head_outputs.append(segment_sum(weighted, edge_index[1], num_nodes))
    out = head_outputs[0]
    for extra in head_outputs[1:]:
        out = out + extra
    return out * (1.0 / conv.num_heads) + conv.bias


class TestGATVectorized:
    @pytest.mark.parametrize("num_heads", [1, 2, 4])
    def test_matches_per_head_loop(self, batch, rng, num_heads):
        """Vectorized all-heads pass == the old per-head Python loop."""
        from repro.gnn.conv import GATConv

        conv = GATConv(16, rng, num_heads=num_heads)
        h = Tensor(np.random.default_rng(7).normal(size=(batch.num_nodes, 16)))
        fast = conv(h, batch.edge_index, batch.edge_attr).data
        ref = gat_reference_per_head(conv, h, batch.edge_index, batch.edge_attr).data
        assert np.allclose(fast, ref, atol=1e-12)

    def test_matches_per_head_loop_random_graphs(self, rng):
        from repro.gnn.conv import GATConv

        g = np.random.default_rng(11)
        for trial in range(5):
            n = int(g.integers(2, 12))
            e = int(g.integers(1, 4 * n))
            ei = g.integers(0, n, size=(2, e))
            ea = np.stack([g.integers(0, 4, size=e), g.integers(0, 3, size=e)], axis=1)
            conv = GATConv(8, np.random.default_rng((13, trial)), num_heads=2)
            h = Tensor(g.normal(size=(n, 8)))
            fast = conv(h, ei, ea).data
            ref = gat_reference_per_head(conv, h, ei, ea).data
            assert np.allclose(fast, ref, atol=1e-12), trial

    def test_empty_edges_averages_all_heads(self, rng):
        """Zero-edge fallback uses the head-mean of all projections, not
        only head 0's weight slice."""
        from repro.gnn.conv import GATConv

        conv = GATConv(8, rng, num_heads=2)
        h = Tensor(np.random.default_rng(3).normal(size=(5, 8)))
        out = conv(h, np.zeros((2, 0), dtype=np.int64),
                   np.zeros((0, 2), dtype=np.int64)).data

        w = conv.proj.weight.data  # (8, 16): [head0 | head1]
        expected = 0.5 * (h.data @ w[:, :8] + h.data @ w[:, 8:]) + conv.bias.data
        assert np.allclose(out, expected, atol=1e-12)
        # Regression: head 0 alone was the old (buggy) fallback.
        head0_only = h.data @ w[:, :8] + conv.bias.data
        assert not np.allclose(out, head0_only)

    def test_empty_edges_gradients_reach_all_heads(self, rng):
        from repro.gnn.conv import GATConv

        conv = GATConv(8, rng, num_heads=2)
        h = Tensor(np.random.default_rng(3).normal(size=(5, 8)))
        conv(h, np.zeros((2, 0), dtype=np.int64),
             np.zeros((0, 2), dtype=np.int64)).sum().backward()
        grad = conv.proj.weight.grad
        assert grad is not None
        assert np.abs(grad[:, :8]).sum() > 0  # head 0
        assert np.abs(grad[:, 8:]).sum() > 0  # head 1


class TestBondEncoder:
    def test_embeds_both_fields(self, rng):
        enc = BondEncoder(8, rng)
        ea = np.array([[0, 0], [1, 2]])
        out = enc(ea)
        assert out.shape == (2, 8)
        assert not np.allclose(out.data[0], out.data[1])

    def test_mask_bond_id_valid(self, rng):
        from repro.graph import MASK_BOND_ID

        enc = BondEncoder(8, rng)
        out = enc(np.array([[MASK_BOND_ID, 0]]))
        assert out.shape == (1, 8)
