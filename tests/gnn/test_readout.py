"""Tests for graph-level readout candidates (phi_read)."""

import numpy as np
import pytest

from repro.gnn import READOUT_CANDIDATES, make_readout
from repro.nn import Tensor


@pytest.fixture
def pooled_inputs(rng):
    h = Tensor(rng.normal(size=(12, 8)), requires_grad=True)
    batch = np.repeat(np.arange(3), 4)
    return h, batch, 3


class TestContracts:
    @pytest.mark.parametrize("name", READOUT_CANDIDATES)
    def test_output_shape(self, name, pooled_inputs, rng):
        readout = make_readout(name, 8, rng)
        h, batch, num = pooled_inputs
        assert readout(h, batch, num).shape == (3, 8)

    @pytest.mark.parametrize("name", READOUT_CANDIDATES)
    def test_gradients_flow(self, name, pooled_inputs, rng):
        readout = make_readout(name, 8, rng)
        h, batch, num = pooled_inputs
        readout(h, batch, num).sum().backward()
        assert h.grad is not None and np.abs(h.grad).sum() > 0

    @pytest.mark.parametrize("name", READOUT_CANDIDATES)
    def test_permutation_invariance_within_graph(self, name, rng):
        """Readout must be invariant to node order inside each graph."""
        readout = make_readout(name, 8, rng)
        h_data = np.random.default_rng(3).normal(size=(8, 8))
        batch = np.repeat(np.arange(2), 4)
        out = readout(Tensor(h_data), batch, 2).data.copy()
        perm = np.concatenate([np.random.default_rng(4).permutation(4),
                               4 + np.random.default_rng(5).permutation(4)])
        out_p = readout(Tensor(h_data[perm]), batch, 2).data
        assert np.allclose(out, out_p, atol=1e-8)

    @pytest.mark.parametrize("name", READOUT_CANDIDATES)
    def test_graph_independence(self, name, rng):
        """Changing nodes of graph 1 must not change graph 0's readout."""
        readout = make_readout(name, 4, rng)
        h = np.random.default_rng(0).normal(size=(6, 4))
        batch = np.array([0, 0, 0, 1, 1, 1])
        base = readout(Tensor(h), batch, 2).data[0].copy()
        h2 = h.copy()
        h2[3:] *= 10.0
        changed = readout(Tensor(h2), batch, 2).data[0]
        assert np.allclose(base, changed, atol=1e-8)

    def test_unknown_readout_raises(self, rng):
        with pytest.raises(ValueError):
            make_readout("fourier", 8, rng)


class TestSemantics:
    def test_sum_scales_with_graph_size(self, rng):
        readout = make_readout("sum", 4, rng)
        h = Tensor(np.ones((6, 4)))
        batch = np.array([0, 0, 0, 0, 1, 1])
        out = readout(h, batch, 2).data
        assert np.allclose(out[0], 4.0) and np.allclose(out[1], 2.0)

    def test_mean_is_size_invariant(self, rng):
        readout = make_readout("mean", 4, rng)
        h = Tensor(np.ones((6, 4)))
        batch = np.array([0, 0, 0, 0, 1, 1])
        out = readout(h, batch, 2).data
        assert np.allclose(out[0], out[1])

    def test_max_detects_dominant_feature(self, rng):
        readout = make_readout("max", 2, rng)
        h = Tensor(np.array([[0.0, 1.0], [5.0, 0.0], [1.0, 1.0]]))
        out = readout(h, np.zeros(3, dtype=np.int64), 1).data
        assert np.allclose(out, [[5.0, 1.0]])

    def test_set2set_attention_focuses(self, rng):
        readout = make_readout("set2set", 8, rng)
        h = Tensor(np.random.default_rng(1).normal(size=(5, 8)))
        out = readout(h, np.zeros(5, dtype=np.int64), 1)
        assert out.shape == (1, 8)
        for p in readout.parameters():
            p.zero_grad()
        out.sum().backward()
        assert readout.lstm.w_x.grad is not None

    def test_sortpool_handles_small_graphs(self, rng):
        # Graph smaller than k must be zero-padded, not crash.
        readout = make_readout("sort", 4, rng)
        h = Tensor(np.random.default_rng(0).normal(size=(2, 4)))
        out = readout(h, np.zeros(2, dtype=np.int64), 1)
        assert out.shape == (1, 4)

    def test_sortpool_selects_topk_by_last_channel(self, rng):
        from repro.gnn.readout import SortPoolReadout

        readout = SortPoolReadout(4, rng, k=1)
        h = np.zeros((3, 4))
        h[1, -1] = 10.0  # node 1 wins the sort channel
        h[1, 0] = 7.0
        t = Tensor(h, requires_grad=True)
        readout(t, np.zeros(3, dtype=np.int64), 1).sum().backward()
        # Only the selected node receives gradient.
        assert np.abs(t.grad[1]).sum() > 0
        assert np.abs(t.grad[0]).sum() == 0 and np.abs(t.grad[2]).sum() == 0

    def test_neural_pool_is_nonlinear_in_nodes(self, rng):
        readout = make_readout("neural", 4, rng)
        # Zero-init biases make ReLU nets positively homogeneous; a nonzero
        # bias exposes the nonlinearity under scaling.
        readout.pre.layers[0].bias.data[:] = 0.5
        h = Tensor(np.random.default_rng(2).normal(size=(4, 4)))
        out1 = readout(h, np.zeros(4, dtype=np.int64), 1).data
        out2 = readout(h * 2.0, np.zeros(4, dtype=np.int64), 1).data
        assert not np.allclose(out2, 2.0 * out1)
