"""Tests for identity-augmentation candidates (phi_id)."""

import numpy as np
import pytest

from repro.gnn import IDENTITY_CANDIDATES, make_identity_aug
from repro.gnn.identity import IdentityAug, TransAug, ZeroAug
from repro.nn import Tensor


@pytest.fixture
def hz(rng):
    h = Tensor(rng.normal(size=(6, 8)), requires_grad=True)
    z = Tensor(rng.normal(size=(6, 8)), requires_grad=True)
    return h, z


class TestCandidates:
    def test_candidate_list_matches_paper(self):
        assert IDENTITY_CANDIDATES == ["zero_aug", "identity_aug", "trans_aug"]

    @pytest.mark.parametrize("name", IDENTITY_CANDIDATES)
    def test_shape_contract(self, name, hz, rng):
        aug = make_identity_aug(name, 8, rng)
        h, z = hz
        assert aug(h, z).shape == (6, 8)

    def test_unknown_name_raises(self, rng):
        with pytest.raises(ValueError):
            make_identity_aug("skipnet", 8, rng)

    def test_zero_aug_ignores_identity(self, hz):
        h, z = hz
        out = ZeroAug()(h, z)
        assert np.allclose(out.data, z.data)

    def test_identity_aug_is_residual(self, hz):
        h, z = hz
        assert np.allclose(IdentityAug()(h, z).data, h.data + z.data)

    def test_trans_aug_starts_as_zero_aug(self, hz, rng):
        # Bottleneck up-projection is zero-initialized: g(h) == 0 at init.
        aug = TransAug(8, 2, rng)
        h, z = hz
        assert np.allclose(aug(h, z).data, z.data)

    def test_trans_aug_parameter_efficient(self, rng):
        aug = TransAug(32, 4, rng)
        assert aug.num_parameters() < 32 * 32

    def test_trans_aug_gradient_reaches_identity_path(self, hz, rng):
        aug = TransAug(8, 2, rng)
        # Push the up weights off zero so the identity path is active.
        aug.transform.up.weight.data[:] = 0.1
        h, z = hz
        aug(h, z).sum().backward()
        assert h.grad is not None and np.abs(h.grad).sum() > 0

    def test_bottleneck_capped_by_dim(self, rng):
        # dim=4 with default bottleneck 8 must clamp below dim.
        aug = make_identity_aug("trans_aug", 4, rng)
        assert aug.transform.hidden < 4
