"""Tests for the end-to-end graph prediction model."""

import numpy as np
import pytest

from repro.gnn import GNNEncoder, GraphPredictionModel
from repro.graph import Batch


class TestPredictionModel:
    def test_logit_shape(self, batch, encoder):
        model = GraphPredictionModel(encoder, num_tasks=3)
        assert model(batch).shape == (batch.num_graphs, 3)

    def test_forward_full_contract(self, batch, encoder):
        model = GraphPredictionModel(encoder, num_tasks=2)
        out = model.forward_full(batch)
        assert set(out) == {"layers", "node", "graph", "logits"}
        assert len(out["layers"]) == encoder.num_layers
        assert out["node"].shape == (batch.num_nodes, encoder.emb_dim)
        assert out["graph"].shape == (batch.num_graphs, encoder.emb_dim)

    def test_vanilla_configuration_default(self, encoder):
        model = GraphPredictionModel(encoder, num_tasks=1)
        assert model.fusion_name == "last" and model.readout_name == "mean"

    def test_custom_fusion_readout(self, batch, encoder):
        model = GraphPredictionModel(encoder, num_tasks=1, fusion="concat", readout="set2set")
        assert model(batch).shape == (batch.num_graphs, 1)

    def test_gradients_reach_every_component(self, batch, encoder):
        model = GraphPredictionModel(encoder, num_tasks=1, fusion="lstm", readout="neural")
        model(batch).sum().backward()
        assert model.head.weight.grad is not None
        assert encoder.atom_embedding.weight.grad is not None
        assert any(p.grad is not None for p in model.fusion.parameters())

    def test_state_dict_roundtrip(self, batch):
        enc_a = GNNEncoder("gin", 2, 8, dropout=0.0, seed=1)
        enc_b = GNNEncoder("gin", 2, 8, dropout=0.0, seed=2)
        a = GraphPredictionModel(enc_a, num_tasks=1, seed=1)
        b = GraphPredictionModel(enc_b, num_tasks=1, seed=2)
        b.load_state_dict(a.state_dict())
        a.eval(), b.eval()
        assert np.allclose(a(batch).data, b(batch).data)

    def test_deterministic_eval(self, batch, encoder):
        model = GraphPredictionModel(encoder, num_tasks=1)
        model.eval()
        assert np.allclose(model(batch).data, model(batch).data)
