"""Tests for the K-layer GNN encoder."""

import numpy as np
import pytest

from repro.gnn import GNNEncoder
from repro.graph import Batch


class TestEncoder:
    def test_returns_all_layers(self, batch):
        enc = GNNEncoder("gin", num_layers=4, emb_dim=16, dropout=0.0, seed=0)
        layers = enc(batch)
        assert len(layers) == 4
        assert all(layer.shape == (batch.num_nodes, 16) for layer in layers)

    def test_requires_at_least_one_layer(self):
        with pytest.raises(ValueError):
            GNNEncoder(num_layers=0)

    def test_deterministic_given_seed(self, batch):
        a = GNNEncoder("gin", 2, 8, dropout=0.0, seed=5)
        b = GNNEncoder("gin", 2, 8, dropout=0.0, seed=5)
        a.eval(), b.eval()
        assert np.allclose(a(batch)[-1].data, b(batch)[-1].data)

    def test_embed_nodes_uses_both_attributes(self, batch):
        enc = GNNEncoder("gin", 2, 8, dropout=0.0, seed=0)
        h0 = enc.embed_nodes(batch)
        assert h0.shape == (batch.num_nodes, 8)

    def test_forward_from_matches_forward(self, batch):
        enc = GNNEncoder("gin", 3, 8, dropout=0.0, seed=0)
        enc.eval()
        direct = enc(batch)
        manual = enc.forward_from(enc.embed_nodes(batch), batch)
        for a, b in zip(direct, manual):
            assert np.allclose(a.data, b.data)

    def test_layer_step_composes_to_forward(self, batch):
        enc = GNNEncoder("gin", 3, 8, dropout=0.0, seed=0)
        enc.eval()
        expected = enc(batch)
        h = enc.embed_nodes(batch)
        for k in range(3):
            h = enc.layer_step(h, batch, k)
        assert np.allclose(h.data, expected[-1].data)

    def test_node_representation_is_last_layer(self, batch):
        enc = GNNEncoder("gin", 2, 8, dropout=0.0, seed=0)
        enc.eval()
        assert np.allclose(enc.node_representation(batch).data, enc(batch)[-1].data)

    def test_dropout_active_in_train_mode(self, batch):
        enc = GNNEncoder("gin", 2, 8, dropout=0.5, seed=0)
        a = enc(batch)[-1].data.copy()
        b = enc(batch)[-1].data
        assert not np.allclose(a, b)

    def test_state_dict_roundtrip(self, batch):
        a = GNNEncoder("gin", 2, 8, dropout=0.0, seed=1)
        b = GNNEncoder("gin", 2, 8, dropout=0.0, seed=2)
        b.load_state_dict(a.state_dict())
        a.eval(), b.eval()
        assert np.allclose(a(batch)[-1].data, b(batch)[-1].data)

    @pytest.mark.parametrize("conv_type", ["gin", "gcn", "sage", "gat"])
    def test_all_backbones_forward(self, conv_type, batch):
        enc = GNNEncoder(conv_type, 2, 8, dropout=0.0, seed=0)
        out = enc(batch)[-1]
        assert np.all(np.isfinite(out.data))

    def test_gradients_flow_to_embeddings(self, batch):
        enc = GNNEncoder("gin", 2, 8, dropout=0.0, seed=0)
        enc(batch)[-1].sum().backward()
        assert enc.atom_embedding.weight.grad is not None
        assert enc.tag_embedding.weight.grad is not None
