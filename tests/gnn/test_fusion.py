"""Tests for multi-scale fusion candidates (phi_fuse)."""

import numpy as np
import pytest

from repro.gnn import FUSION_CANDIDATES, make_fusion
from repro.gnn.fusion import GPRFusion, LSTMFusion, PPRFusion
from repro.nn import Tensor


@pytest.fixture
def layers(rng):
    return [Tensor(rng.normal(size=(10, 8)), requires_grad=True) for _ in range(4)]


class TestContracts:
    @pytest.mark.parametrize("name", FUSION_CANDIDATES)
    def test_output_shape(self, name, layers, rng):
        fusion = make_fusion(name, 4, 8, rng)
        assert fusion(layers).shape == (10, 8)

    @pytest.mark.parametrize("name", FUSION_CANDIDATES)
    def test_gradients_flow(self, name, layers, rng):
        fusion = make_fusion(name, 4, 8, rng)
        fusion(layers).sum().backward()
        grads = [layer.grad for layer in layers if layer.grad is not None]
        assert grads, f"{name} produced no gradient"

    def test_unknown_fusion_raises(self, rng):
        with pytest.raises(ValueError):
            make_fusion("transformer", 4, 8, rng)


class TestSemantics:
    def test_last_returns_final_layer(self, layers, rng):
        fusion = make_fusion("last", 4, 8, rng)
        assert np.allclose(fusion(layers).data, layers[-1].data)

    def test_mean_is_equal_weighting(self, layers, rng):
        fusion = make_fusion("mean", 4, 8, rng)
        expected = np.mean([l.data for l in layers], axis=0)
        assert np.allclose(fusion(layers).data, expected)

    def test_max_is_channelwise_max(self, layers, rng):
        fusion = make_fusion("max", 4, 8, rng)
        expected = np.max([l.data for l in layers], axis=0)
        assert np.allclose(fusion(layers).data, expected)

    def test_ppr_weights_decay_and_normalize(self):
        fusion = PPRFusion(5, gamma=0.2)
        assert abs(fusion.weights.sum() - 1.0) < 1e-12
        assert np.all(np.diff(fusion.weights) < 0)

    def test_ppr_invalid_gamma(self):
        with pytest.raises(ValueError):
            PPRFusion(3, gamma=1.5)

    def test_concat_mixes_all_layers(self, layers, rng):
        fusion = make_fusion("concat", 4, 8, rng)
        out_full = fusion(layers).data.copy()
        perturbed = [layers[0] * 2.0] + layers[1:]
        assert not np.allclose(fusion(perturbed).data, out_full)

    def test_gpr_initialized_to_ppr_profile(self):
        gpr = GPRFusion(4, gamma=0.15)
        ppr = PPRFusion(4, gamma=0.15)
        assert np.allclose(gpr.gamma.data, ppr.weights)

    def test_gpr_weights_trainable_and_signable(self, layers, rng):
        gpr = GPRFusion(4)
        gpr(layers).sum().backward()
        assert gpr.gamma.grad is not None
        gpr.gamma.data[0] = -0.5  # signed weights are representable
        out = gpr(layers)
        assert np.all(np.isfinite(out.data))

    def test_lstm_attention_depends_on_content(self, rng):
        fusion = LSTMFusion(3, 8, rng)
        base = [Tensor(np.zeros((4, 8))) for _ in range(3)]
        spike = [Tensor(np.zeros((4, 8))), Tensor(np.ones((4, 8)) * 3.0),
                 Tensor(np.zeros((4, 8)))]
        out_base = fusion(base).data
        out_spike = fusion(spike).data
        assert not np.allclose(out_base, out_spike)

    def test_lstm_weights_are_per_node(self, rng):
        # Different nodes with different trajectories get different fusions.
        fusion = LSTMFusion(2, 4, rng)
        l1 = Tensor(np.vstack([np.zeros(4), np.ones(4) * 2.0]))
        l2 = Tensor(np.vstack([np.ones(4), np.zeros(4)]))
        out = fusion([l1, l2]).data
        assert not np.allclose(out[0], out[1])
