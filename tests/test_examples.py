"""Sanity checks on the example scripts (compile + structural contracts).

Full execution of the examples takes minutes; here we verify they compile,
import only public API, and each defines a ``main`` entry point.  The
examples themselves are exercised end-to-end in the recorded runs.
"""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_at_least_three_examples_exist():
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_compiles(path):
    source = path.read_text()
    compile(source, str(path), "exec")


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_has_main_and_guard(path):
    tree = ast.parse(path.read_text())
    func_names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in func_names, f"{path.name} lacks a main()"
    assert '__main__' in path.read_text(), f"{path.name} lacks a __main__ guard"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_only_public_package(path):
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            assert root in {"repro", "numpy", "os", "tempfile"}, (
                f"{path.name} imports unexpected module {node.module}"
            )


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_has_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
