"""Tests for evaluation metrics (ROC-AUC, RMSE, multi-task averaging)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import higher_is_better, multitask_score, rmse_score, roc_auc_score


class TestROCAUC:
    def test_perfect_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=2000)
        s = rng.random(2000)
        assert abs(roc_auc_score(y, s) - 0.5) < 0.05

    def test_ties_get_half_credit(self):
        assert roc_auc_score([0, 1], [0.5, 0.5]) == 0.5

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score([1, 1], [0.3, 0.7])

    @given(seed=st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_invariant_to_monotone_transform(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=30)
        if len(np.unique(y)) < 2:
            y[0], y[1] = 0, 1
        s = rng.normal(size=30)
        a = roc_auc_score(y, s)
        b = roc_auc_score(y, np.exp(s) * 3.0 + 5.0)
        assert a == pytest.approx(b)

    @given(seed=st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_complement_symmetry(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=25)
        if len(np.unique(y)) < 2:
            y[0], y[1] = 0, 1
        s = rng.normal(size=25)
        assert roc_auc_score(y, s) == pytest.approx(1.0 - roc_auc_score(1 - y, s))

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=40)
        y[:2] = [0, 1]
        s = rng.normal(size=40)
        pos, neg = s[y == 1], s[y == 0]
        pairs = [(1.0 if p > n else 0.5 if p == n else 0.0) for p in pos for n in neg]
        assert roc_auc_score(y, s) == pytest.approx(np.mean(pairs))


class TestRMSE:
    def test_zero_for_exact(self):
        assert rmse_score([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert rmse_score([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    @given(seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_nonnegative_and_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.normal(size=10), rng.normal(size=10)
        assert rmse_score(a, b) >= 0
        assert rmse_score(a, b) == pytest.approx(rmse_score(b, a))


class TestMultitask:
    def test_averages_over_tasks(self):
        y = np.array([[0, 1], [1, 0], [0, 1], [1, 0]], dtype=float)
        s = np.array([[0.1, 0.9], [0.9, 0.1], [0.2, 0.8], [0.8, 0.2]])
        assert multitask_score(y, s, "roc_auc") == 1.0

    def test_skips_missing_labels(self):
        y = np.array([[0.0, np.nan], [1.0, np.nan], [0.0, np.nan]])
        s = np.random.default_rng(0).random((3, 2))
        score = multitask_score(y, s, "roc_auc")
        assert 0.0 <= score <= 1.0  # second task skipped silently

    def test_skips_single_class_tasks(self):
        y = np.array([[0.0, 1.0], [1.0, 1.0], [0.0, 1.0]])
        s = np.array([[0.1, 0.5], [0.9, 0.5], [0.2, 0.5]])
        assert multitask_score(y, s, "roc_auc") == 1.0  # only task 0 counts

    def test_all_degenerate_raises(self):
        y = np.ones((3, 1))
        s = np.random.default_rng(0).random((3, 1))
        with pytest.raises(ValueError):
            multitask_score(y, s, "roc_auc")

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            multitask_score(np.zeros((2, 1)), np.zeros((3, 1)), "rmse")

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError):
            multitask_score(np.zeros((2, 1)), np.zeros((2, 1)), "f1")

    def test_rmse_multitask(self):
        y = np.array([[1.0, 0.0], [2.0, 0.0]])
        s = np.array([[1.0, 1.0], [2.0, 1.0]])
        assert multitask_score(y, s, "rmse") == pytest.approx(0.5)


class TestDirection:
    def test_directions(self):
        assert higher_is_better("roc_auc")
        assert not higher_is_better("rmse")
        with pytest.raises(ValueError):
            higher_is_better("accuracy")
