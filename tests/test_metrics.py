"""Tests for evaluation metrics (ROC-AUC, RMSE, multi-task averaging)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    UndefinedMetricError,
    fallback_score,
    higher_is_better,
    multitask_score,
    multitask_score_or_fallback,
    rmse_score,
    roc_auc_score,
)


class TestROCAUC:
    def test_perfect_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=2000)
        s = rng.random(2000)
        assert abs(roc_auc_score(y, s) - 0.5) < 0.05

    def test_ties_get_half_credit(self):
        assert roc_auc_score([0, 1], [0.5, 0.5]) == 0.5

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score([1, 1], [0.3, 0.7])

    @given(seed=st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_invariant_to_monotone_transform(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=30)
        if len(np.unique(y)) < 2:
            y[0], y[1] = 0, 1
        s = rng.normal(size=30)
        a = roc_auc_score(y, s)
        b = roc_auc_score(y, np.exp(s) * 3.0 + 5.0)
        assert a == pytest.approx(b)

    @given(seed=st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_complement_symmetry(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=25)
        if len(np.unique(y)) < 2:
            y[0], y[1] = 0, 1
        s = rng.normal(size=25)
        assert roc_auc_score(y, s) == pytest.approx(1.0 - roc_auc_score(1 - y, s))

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=40)
        y[:2] = [0, 1]
        s = rng.normal(size=40)
        pos, neg = s[y == 1], s[y == 0]
        pairs = [(1.0 if p > n else 0.5 if p == n else 0.0) for p in pos for n in neg]
        assert roc_auc_score(y, s) == pytest.approx(np.mean(pairs))


class TestRMSE:
    def test_zero_for_exact(self):
        assert rmse_score([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert rmse_score([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    @given(seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_nonnegative_and_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.normal(size=10), rng.normal(size=10)
        assert rmse_score(a, b) >= 0
        assert rmse_score(a, b) == pytest.approx(rmse_score(b, a))


class TestMultitask:
    def test_averages_over_tasks(self):
        y = np.array([[0, 1], [1, 0], [0, 1], [1, 0]], dtype=float)
        s = np.array([[0.1, 0.9], [0.9, 0.1], [0.2, 0.8], [0.8, 0.2]])
        assert multitask_score(y, s, "roc_auc") == 1.0

    def test_skips_missing_labels(self):
        y = np.array([[0.0, np.nan], [1.0, np.nan], [0.0, np.nan]])
        s = np.random.default_rng(0).random((3, 2))
        score = multitask_score(y, s, "roc_auc")
        assert 0.0 <= score <= 1.0  # second task skipped silently

    def test_skips_single_class_tasks(self):
        y = np.array([[0.0, 1.0], [1.0, 1.0], [0.0, 1.0]])
        s = np.array([[0.1, 0.5], [0.9, 0.5], [0.2, 0.5]])
        assert multitask_score(y, s, "roc_auc") == 1.0  # only task 0 counts

    def test_all_degenerate_raises(self):
        y = np.ones((3, 1))
        s = np.random.default_rng(0).random((3, 1))
        with pytest.raises(ValueError):
            multitask_score(y, s, "roc_auc")

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            multitask_score(np.zeros((2, 1)), np.zeros((3, 1)), "rmse")

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError):
            multitask_score(np.zeros((2, 1)), np.zeros((2, 1)), "f1")

    def test_rmse_multitask(self):
        y = np.array([[1.0, 0.0], [2.0, 0.0]])
        s = np.array([[1.0, 1.0], [2.0, 1.0]])
        assert multitask_score(y, s, "rmse") == pytest.approx(0.5)


def _tie_average_ranks_loop(y_score):
    """The sequential tie-scan the vectorized implementation replaced —
    kept verbatim as the reference for the bit-identity property test."""
    y_score = np.asarray(y_score, dtype=np.float64).ravel()
    order = np.argsort(y_score, kind="mergesort")
    ranks = np.empty(len(y_score), dtype=np.float64)
    ranks[order] = np.arange(1, len(y_score) + 1)
    sorted_scores = y_score[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


class TestVectorizedTieRanks:
    @given(scores=st.lists(
        st.one_of(st.integers(-3, 3).map(float),
                  st.floats(-5, 5, allow_nan=False, width=32).map(float),
                  st.just(float("nan"))),
        min_size=1, max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_bit_identical_to_loop_implementation(self, scores):
        from repro.metrics import _tie_average_ranks

        got = _tie_average_ranks(np.asarray(scores, dtype=np.float64))
        assert np.array_equal(got, _tie_average_ranks_loop(scores))

    def test_nan_scores_keep_positional_ranks(self):
        """np.unique collapses NaNs into one tie group; the legacy scan
        (NaN != NaN) ranked each NaN positionally — pinned explicitly."""
        from repro.metrics import _tie_average_ranks

        scores = np.array([np.nan, 1.0, np.nan, 1.0])
        expected = _tie_average_ranks_loop(scores)
        assert np.array_equal(_tie_average_ranks(scores), expected)
        assert list(expected) == [3.0, 1.5, 4.0, 1.5]

    @given(seed=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_auc_bit_identical_with_heavy_ties(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=50)
        if len(np.unique(y)) < 2:
            y[0], y[1] = 0, 1
        s = rng.integers(0, 4, size=50).astype(np.float64)  # many ties
        ranks = _tie_average_ranks_loop(s)
        pos = y == 1
        n_pos, n_neg = int(pos.sum()), int((y == 0).sum())
        u = ranks[pos].sum() - n_pos * (n_pos + 1) / 2.0
        assert roc_auc_score(y, s) == u / (n_pos * n_neg)


class TestErrorTaxonomy:
    """Undefined-on-this-data falls back; caller errors must propagate."""

    def test_undefined_metric_error_is_value_error(self):
        assert issubclass(UndefinedMetricError, ValueError)

    def test_single_class_raises_undefined(self):
        with pytest.raises(UndefinedMetricError):
            roc_auc_score([1, 1], [0.3, 0.7])

    def test_no_valid_tasks_raises_undefined(self):
        with pytest.raises(UndefinedMetricError):
            multitask_score(np.ones((3, 1)), np.zeros((3, 1)), "roc_auc")

    def test_fallback_used_when_metric_undefined(self):
        score = multitask_score_or_fallback(
            np.ones((3, 1)), np.zeros((3, 1)), "roc_auc")
        assert 0.0 <= score <= 1.0

    def test_unknown_metric_propagates_through_fallback(self):
        """Regression: an unknown metric name used to be silently scored by
        the classification-likelihood surrogate — a nonsense number."""
        with pytest.raises(ValueError, match="unknown metric"):
            multitask_score_or_fallback(
                np.array([[0.0], [1.0]]), np.array([[0.1], [0.9]]), "nonsense")

    def test_unknown_metric_propagates_even_on_degenerate_labels(self):
        # Single-class labels would previously reach fallback_score, which
        # happily "scored" the unknown metric as a likelihood.
        with pytest.raises(ValueError, match="unknown metric"):
            multitask_score_or_fallback(np.ones((3, 1)), np.zeros((3, 1)), "f1")

    def test_shape_mismatch_propagates_through_fallback(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            multitask_score_or_fallback(np.zeros((2, 1)), np.zeros((3, 1)),
                                        "roc_auc")

    def test_fallback_score_rejects_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metric"):
            fallback_score(np.array([[1.0]]), np.array([[0.5]]), "nonsense")

    def test_fallback_score_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            fallback_score(np.zeros((2, 1)), np.zeros((3, 1)), "roc_auc")

    def test_valid_data_unaffected(self):
        y = np.array([[0.0], [1.0], [0.0], [1.0]])
        s = np.array([[0.1], [0.9], [0.2], [0.8]])
        assert multitask_score_or_fallback(y, s, "roc_auc") == 1.0


class TestDirection:
    def test_directions(self):
        assert higher_is_better("roc_auc")
        assert not higher_is_better("rmse")
        with pytest.raises(ValueError):
            higher_is_better("accuracy")
