"""Tests for LSTM cells (fusion / Set2Set substrate)."""

import numpy as np
import pytest

from repro.nn import LSTM, LSTMCell, Tensor


class TestLSTMCell:
    def test_output_shapes(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, c = cell.initial_state(3)
        h2, c2 = cell(Tensor(np.ones((3, 4))), h, c)
        assert h2.shape == (3, 6) and c2.shape == (3, 6)

    def test_hidden_bounded_by_tanh(self, rng):
        cell = LSTMCell(2, 4, rng)
        h, c = cell.initial_state(2)
        h2, _ = cell(Tensor(np.full((2, 2), 100.0)), h, c)
        assert np.all(np.abs(h2.data) <= 1.0)

    def test_forget_bias_initialized_positive(self, rng):
        cell = LSTMCell(2, 3, rng)
        assert np.allclose(cell.bias.data[3:6], 1.0)

    def test_gradients_flow_to_weights(self, rng):
        cell = LSTMCell(2, 3, rng)
        h, c = cell.initial_state(2)
        h2, c2 = cell(Tensor(np.ones((2, 2))), h, c)
        (h2.sum() + c2.sum()).backward()
        assert cell.w_x.grad is not None and cell.w_h.grad is not None

    def test_state_evolution_depends_on_input(self, rng):
        cell = LSTMCell(2, 3, rng)
        h, c = cell.initial_state(1)
        h_a, _ = cell(Tensor([[1.0, 0.0]]), h, c)
        h_b, _ = cell(Tensor([[0.0, 1.0]]), h, c)
        assert not np.allclose(h_a.data, h_b.data)


class TestLSTM:
    def test_unidirectional_output_count(self, rng):
        lstm = LSTM(4, 6, rng)
        steps = [Tensor(np.ones((2, 4))) for _ in range(5)]
        outs = lstm(steps)
        assert len(outs) == 5 and outs[0].shape == (2, 6)
        assert lstm.output_dim == 6

    def test_bidirectional_doubles_width(self, rng):
        lstm = LSTM(4, 6, rng, bidirectional=True)
        outs = lstm([Tensor(np.ones((2, 4))) for _ in range(3)])
        assert outs[0].shape == (2, 12)
        assert lstm.output_dim == 12

    def test_empty_sequence_raises(self, rng):
        with pytest.raises(ValueError):
            LSTM(2, 2, rng)([])

    def test_gradient_reaches_first_step(self, rng):
        lstm = LSTM(3, 4, rng)
        steps = [Tensor(np.ones((2, 3)), requires_grad=True) for _ in range(4)]
        lstm(steps)[-1].sum().backward()
        assert steps[0].grad is not None and np.abs(steps[0].grad).sum() > 0

    def test_backward_direction_sees_future(self, rng):
        lstm = LSTM(2, 3, rng, bidirectional=True)
        base = [Tensor(np.zeros((1, 2))) for _ in range(3)]
        out_base = lstm(base)[0].data.copy()
        changed = [Tensor(np.zeros((1, 2))) for _ in range(2)] + [Tensor(np.ones((1, 2)))]
        out_changed = lstm(changed)[0].data
        # First-step output must change when the LAST input changes (bwd pass).
        assert not np.allclose(out_base, out_changed)
