"""OpRegistry mechanics + the public-surface dedupe contract.

Satellite of the registry refactor: ``repro.nn.tensor`` and
``repro.nn.segment`` used to each carry their own ``segment_*`` public
functions; both module paths must now resolve to the *identical*
dispatcher object exported by ``repro.nn.ops`` (via PEP 562 module
``__getattr__`` re-exports), so there is exactly one public entry point
per op.  The rest of the file unit-tests the registry container itself
on fresh instances — registration validation, fallback resolution and
dispatcher caching — independently of the real op database.
"""

import numpy as np
import pytest

import repro.nn as nn
import repro.nn.ops as ops_mod
import repro.nn.segment as segment_mod
import repro.nn.tensor as tensor_mod
from repro.nn.ops import OP_REGISTRY, OpRegistry, use_backend


class TestImportPathIdentity:
    """Both legacy import paths must return the identical function."""

    @pytest.mark.parametrize("name", [
        "segment_sum", "segment_mean", "segment_max", "segment_softmax",
        "gather_segments", "scatter_add", "use_backend", "active_backend",
    ])
    def test_segment_path_is_the_ops_object(self, name):
        assert getattr(segment_mod, name) is getattr(ops_mod, name)
        if hasattr(nn, name):
            assert getattr(nn, name) is getattr(ops_mod, name)

    @pytest.mark.parametrize("name", [
        "segment_sum", "segment_mean", "segment_max", "gather",
    ])
    def test_tensor_path_is_the_ops_object(self, name):
        assert getattr(tensor_mod, name) is getattr(ops_mod, name)
        assert getattr(nn, name) is getattr(ops_mod, name)

    def test_unknown_forwarded_attribute_raises(self):
        with pytest.raises(AttributeError):
            segment_mod.not_an_op
        with pytest.raises(AttributeError):
            tensor_mod.not_an_op

    def test_dispatchers_keep_introspection_metadata(self):
        assert nn.segment_sum.__name__ == "segment_sum"
        assert nn.segment_sum.__doc__  # lifted from the preferred impl
        assert callable(nn.segment_sum.__wrapped__)


def _fresh_registry():
    reg = OpRegistry()
    reg.register_backend("ref", description="reference")
    reg.register_backend("fast", fallback="ref")
    reg.register_backend("jit", fallback="fast")
    return reg


def _samples(dtype):
    return []


class TestRegistration:
    def test_backend_redeclaration_rejected(self):
        reg = _fresh_registry()
        with pytest.raises(ValueError, match="already registered"):
            reg.register_backend("ref")

    def test_undeclared_fallback_rejected(self):
        reg = OpRegistry()
        with pytest.raises(ValueError, match="undeclared"):
            reg.register_backend("fast", fallback="ref")

    def test_duplicate_op_rejected(self):
        reg = _fresh_registry()
        reg.register("twice", backends={"ref": abs, "fast": abs},
                     adjoint="a", samples=_samples)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("twice", backends={"ref": abs, "fast": abs},
                         adjoint="a", samples=_samples)

    def test_undeclared_backend_key_rejected(self):
        reg = _fresh_registry()
        with pytest.raises(ValueError, match="undeclared backend"):
            reg.register("op", backends={"cuda": abs},
                         adjoint="a", samples=_samples)

    def test_empty_backends_rejected(self):
        reg = _fresh_registry()
        with pytest.raises(ValueError, match="no backends"):
            reg.register("op", backends={}, adjoint="a", samples=_samples)

    def test_single_backend_requires_waiver(self):
        reg = _fresh_registry()
        with pytest.raises(ValueError, match="waiver"):
            reg.register("op", backends={"ref": abs},
                         adjoint="a", samples=_samples)
        reg.register("op", backends={"ref": abs}, adjoint="a",
                     samples=_samples, waiver="reference-only")
        assert reg.get("op").waiver == "reference-only"

    def test_empty_adjoint_rejected(self):
        reg = _fresh_registry()
        with pytest.raises(ValueError, match="adjoint"):
            reg.register("op", backends={"ref": abs, "fast": abs},
                         adjoint="", samples=_samples)

    def test_non_callable_samples_rejected(self):
        reg = _fresh_registry()
        with pytest.raises(ValueError, match="samples"):
            reg.register("op", backends={"ref": abs, "fast": abs},
                         adjoint="a", samples=None)


class TestResolution:
    def test_direct_and_fallback_resolution(self):
        reg = _fresh_registry()

        def ref_impl(x):
            return x

        def fast_impl(x):
            return x

        reg.register("op", backends={"ref": ref_impl, "fast": fast_impl},
                     adjoint="a", samples=_samples)
        assert reg.resolve("op", "ref") is ref_impl
        assert reg.resolve("op", "fast") is fast_impl
        assert reg.resolve("op", "jit") is fast_impl  # jit -> fast

    def test_fallback_chain_bottoms_out(self):
        reg = _fresh_registry()
        reg.register("op", backends={"ref": abs}, adjoint="a",
                     samples=_samples, waiver="reference-only")
        assert reg.resolve("op", "jit") is abs  # jit -> fast -> ref

    def test_unknown_backend_and_op_raise(self):
        reg = _fresh_registry()
        reg.register("op", backends={"ref": abs}, adjoint="a",
                     samples=_samples, waiver="w")
        with pytest.raises(ValueError, match="unknown backend"):
            reg.resolve("op", "cuda")
        with pytest.raises(KeyError):
            reg.get("nope")

    def test_backend_listings(self):
        reg = _fresh_registry()
        reg.register("op", backends={"fast": abs}, adjoint="a",
                     samples=_samples, waiver="w")
        assert reg.declared_backends() == ("ref", "fast", "jit")
        assert reg.backends() == ("fast",)  # only backends with direct impls

    def test_dispatcher_is_cached(self):
        reg = _fresh_registry()
        reg.register("op", backends={"ref": abs, "fast": abs},
                     adjoint="a", samples=_samples)
        assert reg.dispatcher("op") is reg.dispatcher("op")


class TestActiveBackendPlumbing:
    def test_use_backend_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown backend"):
            use_backend("cuda")

    def test_compiled_is_a_legal_backend_name(self):
        x = nn.Tensor(np.arange(6.0).reshape(3, 2))
        ids = np.array([0, 1, 0])
        with use_backend("compiled"):
            assert nn.active_backend() == "compiled"
            out = nn.segment_sum(x, ids, 2)
        expected = nn.segment_sum(x, ids, 2)
        assert np.array_equal(out.data, expected.data)

    def test_nesting_restores_previous_backend(self):
        assert nn.active_backend() == "reduceat"
        with use_backend("legacy"):
            assert nn.active_backend() == "legacy"
            with use_backend("compiled"):
                assert nn.active_backend() == "compiled"
            assert nn.active_backend() == "legacy"
        assert nn.active_backend() == "reduceat"

    def test_registry_is_exported_from_nn(self):
        assert nn.OP_REGISTRY is OP_REGISTRY
        assert nn.OpRegistry is OpRegistry
