"""Tests for learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import Adam, CosineAnnealingLR, Parameter, SGD, StepLR, WarmupLR


def make_opt(lr=1.0):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestStepLR:
    def test_decays_at_boundaries(self):
        opt = make_opt(1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(5)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01])

    def test_applies_to_optimizer(self):
        opt = make_opt(1.0)
        StepLR(opt, step_size=1, gamma=0.5).step()
        assert opt.lr == 0.5

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_size=0)


class TestCosine:
    def test_starts_high_ends_at_min(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < 1.0
        assert lrs[-1] == pytest.approx(0.1)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_clamps_past_t_max(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=3)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(0.0)

    def test_invalid_t_max(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(make_opt(), t_max=0)


class TestWarmup:
    def test_linear_ramp(self):
        opt = make_opt(1.0)
        sched = WarmupLR(opt, warmup_epochs=4)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_constant_after_warmup_without_inner(self):
        opt = make_opt(1.0)
        sched = WarmupLR(opt, warmup_epochs=2)
        for _ in range(5):
            last = sched.step()
        assert last == pytest.approx(1.0)

    def test_delegates_to_inner_after_warmup(self):
        opt = make_opt(1.0)
        inner = StepLR(opt, step_size=1, gamma=0.5)
        sched = WarmupLR(opt, warmup_epochs=2, after=inner)
        lrs = [sched.step() for _ in range(4)]
        assert lrs[:2] == pytest.approx([0.5, 1.0])
        assert lrs[2] == pytest.approx(0.5)  # inner epoch 1
        assert lrs[3] == pytest.approx(0.25)

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            WarmupLR(make_opt(), warmup_epochs=0)


class TestWithAdam:
    def test_scheduler_affects_training_step_size(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.5)
        sched = StepLR(opt, step_size=1, gamma=0.0)  # lr -> 0 after 1 epoch
        (p * p).sum().backward()
        opt.step()
        first_move = 10.0 - p.data[0]
        sched.step()
        before = p.data[0]
        (p * p).sum().backward()
        opt.step()
        assert abs(p.data[0] - before) < abs(first_move) * 1e-6
