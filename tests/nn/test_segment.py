"""Tests for the plan-backed segment kernel layer (repro.nn.segment).

Covers the SegmentPlan contract, differential testing of the reduceat
backend against the legacy ``np.add.at`` reference (values *and* gradients,
including empty segments, ties in max, single-segment and zero-item
inputs), and the property that plan-aware and plain-index call paths are
bit-identical.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    SegmentPlan,
    Tensor,
    active_backend,
    as_plan,
    gather,
    gather_segments,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
    use_backend,
)
from repro.nn import tensor as legacy
from tests.conftest import gradcheck

OPS = [segment_sum, segment_mean, segment_max, segment_softmax]


def _ids_cases():
    """Index arrays exercising every boundary the ISSUE names."""
    rng = np.random.default_rng(7)
    dense = rng.integers(0, 6, size=25)
    with_empty = dense.copy()
    with_empty[with_empty == 3] = 2  # segment 3 becomes empty
    return {
        "dense": (dense, 6),
        "empty_segment": (with_empty, 6),
        "trailing_empty": (np.zeros(4, dtype=np.int64), 3),
        "single_segment": (np.zeros(9, dtype=np.int64), 1),
        "zero_items": (np.zeros(0, dtype=np.int64), 4),
        "one_row_each": (np.arange(5, dtype=np.int64), 5),
    }


class TestSegmentPlan:
    def test_structure(self):
        ids = np.array([2, 0, 2, 1, 0, 2])
        plan = SegmentPlan(ids, 4)
        assert np.array_equal(plan.counts, [2, 1, 3, 0])
        assert np.array_equal(plan.offsets, [0, 2, 3, 6])
        assert np.array_equal(plan.segments, [0, 1, 2])
        assert np.array_equal(plan.starts, [0, 2, 3])
        assert not plan.full
        assert plan.num_items == 6
        # Stable sort: equal ids keep their original relative order.
        assert np.array_equal(plan.order, [1, 4, 3, 0, 2, 5])

    def test_inv_counts_precomputed(self):
        plan = SegmentPlan(np.array([0, 0, 2]), 3)
        assert np.allclose(plan.inv_counts, [0.5, 1.0, 1.0])

    def test_full_flag(self):
        assert SegmentPlan(np.array([0, 1]), 2).full
        assert not SegmentPlan(np.array([0, 0]), 2).full

    def test_out_of_range_ids_raise(self):
        with pytest.raises(ValueError):
            SegmentPlan(np.array([0, 5]), 3)
        with pytest.raises(ValueError):
            SegmentPlan(np.array([-1]), 3)

    def test_as_plan_passthrough_and_mismatch(self):
        plan = SegmentPlan(np.array([0, 1]), 2)
        assert as_plan(plan) is plan
        assert as_plan(plan, 2) is plan
        with pytest.raises(ValueError):
            as_plan(plan, 3)
        with pytest.raises(ValueError):
            as_plan(np.array([0, 1]))  # index array needs num_segments

    def test_backend_switch(self):
        assert active_backend() == "reduceat"
        with use_backend("legacy"):
            assert active_backend() == "legacy"
            with use_backend("reduceat"):
                assert active_backend() == "reduceat"
            assert active_backend() == "legacy"
        assert active_backend() == "reduceat"
        with pytest.raises(ValueError):
            use_backend("cuda")


class TestBackendParity:
    """reduceat kernels must match the np.add.at reference to <= 1e-9."""

    @pytest.mark.parametrize("case", sorted(_ids_cases()))
    @pytest.mark.parametrize("op", OPS, ids=lambda f: f.__name__)
    def test_values_and_grads_match_legacy(self, op, case):
        ids, n = _ids_cases()[case]
        if op is segment_softmax and ids.size == 0:
            pytest.skip("softmax over zero rows is vacuous")
        rng = np.random.default_rng(1)
        data = rng.normal(size=(ids.size, 3))
        x_new = Tensor(data.copy(), requires_grad=True)
        x_ref = Tensor(data.copy(), requires_grad=True)
        out_new = op(x_new, ids, n)
        with use_backend("legacy"):
            out_ref = op(x_ref, ids, n)
        assert np.abs(out_new.data - out_ref.data).max(initial=0.0) <= 1e-9
        seed = np.cos(np.arange(out_new.size, dtype=np.float64)).reshape(out_new.shape)
        out_new.backward(seed)
        out_ref.backward(seed)
        assert np.abs(x_new.grad - x_ref.grad).max(initial=0.0) <= 1e-9

    def test_max_tie_gradient_split_matches_legacy(self):
        ids = np.array([0, 0, 0, 1, 1])
        data = np.array([[2.0], [2.0], [1.0], [5.0], [5.0]])
        x_new = Tensor(data.copy(), requires_grad=True)
        x_ref = Tensor(data.copy(), requires_grad=True)
        segment_max(x_new, ids, 2).sum().backward()
        with use_backend("legacy"):
            legacy.segment_max(x_ref, ids, 2).sum().backward()
        assert np.array_equal(x_new.grad, x_ref.grad)
        # Ties split evenly inside each segment.
        assert np.allclose(x_new.grad.ravel(), [0.5, 0.5, 0.0, 0.5, 0.5])

    def test_empty_segments_yield_zeros(self):
        ids = np.array([0, 0, 3])
        x = Tensor(np.full((3, 2), -2.0))
        for op in (segment_sum, segment_mean, segment_max):
            out = op(x, ids, 5).data
            assert np.array_equal(out[[1, 2, 4]], np.zeros((3, 2))), op

    def test_softmax_normalizes_per_segment(self):
        rng = np.random.default_rng(3)
        ids = np.repeat(np.arange(4), 5)
        attn = segment_softmax(Tensor(rng.normal(size=20)), ids, 4)
        sums = segment_sum(attn, ids, 4).data
        assert np.allclose(sums, 1.0)

    def test_softmax_stable_for_large_scores(self):
        out = segment_softmax(Tensor(np.array([1000.0, 1000.0, -1000.0])),
                              np.array([0, 0, 1]), 2)
        assert np.all(np.isfinite(out.data))
        assert np.allclose(out.data[:2], 0.5)

    def test_max_long_segment_reduceat_path(self):
        """Segments longer than the vertical-max rank limit take the
        reduceat path; parity with legacy must hold there too."""
        rng = np.random.default_rng(11)
        ids = np.concatenate([np.zeros(200, dtype=np.int64),
                              np.ones(3, dtype=np.int64)])
        data = rng.normal(size=(203, 2))
        x_new = Tensor(data.copy(), requires_grad=True)
        x_ref = Tensor(data.copy(), requires_grad=True)
        out_new = segment_max(x_new, ids, 3)
        with use_backend("legacy"):
            out_ref = segment_max(x_ref, ids, 3)
        assert np.abs(out_new.data - out_ref.data).max() <= 1e-9
        out_new.sum().backward()
        out_ref.sum().backward()
        assert np.abs(x_new.grad - x_ref.grad).max() <= 1e-9

    def test_gather_segments_matches_plain_gather(self):
        """Forward is the same fancy index; the scatter-add adjoint must be
        bit-identical to gather's np.add.at accumulation."""
        rng = np.random.default_rng(9)
        ids = rng.integers(0, 5, size=17)
        data = rng.normal(size=(5, 3))
        x_new = Tensor(data.copy(), requires_grad=True)
        x_ref = Tensor(data.copy(), requires_grad=True)
        out_new = gather_segments(x_new, ids, 5)
        out_ref = gather(x_ref, ids)
        assert np.array_equal(out_new.data, out_ref.data)
        seed = rng.normal(size=out_new.shape)
        out_new.backward(seed)
        out_ref.backward(seed)
        assert np.array_equal(x_new.grad, x_ref.grad)

    def test_gather_segments_legacy_backend_routes_to_gather(self):
        ids = np.array([1, 0, 1])
        x = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        with use_backend("legacy"):
            out = gather_segments(x, ids, 3)
        out.sum().backward()
        assert np.array_equal(out.data, x.data[ids])
        assert np.array_equal(x.grad, np.array([[1.0, 1.0], [2.0, 2.0], [0.0, 0.0]]))


class TestPlanVsIndexBitIdentical:
    """Plan-aware and plain-index call paths must agree bit-for-bit."""

    @given(st.integers(0, 2 ** 32 - 1), st.integers(1, 8), st.integers(0, 40))
    @settings(max_examples=30, deadline=None)
    def test_property(self, seed, num_segments, num_items):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, num_segments, size=num_items)
        data = rng.normal(size=(num_items, 4))
        plan = SegmentPlan(ids, num_segments)
        for op in OPS:
            if op is segment_softmax and num_items == 0:
                continue
            x_a = Tensor(data.copy(), requires_grad=True)
            x_b = Tensor(data.copy(), requires_grad=True)
            via_plan = op(x_a, plan)
            via_ids = op(x_b, ids, num_segments)
            assert np.array_equal(via_plan.data, via_ids.data), op
            via_plan.sum().backward()
            via_ids.sum().backward()
            assert np.array_equal(x_a.grad, x_b.grad), op


class TestGradcheck:
    """Finite-difference checks of the reduceat adjoints themselves."""

    @pytest.mark.parametrize("op", [segment_sum, segment_mean],
                             ids=lambda f: f.__name__)
    def test_linear_ops(self, op, rng):
        ids = rng.integers(0, 4, size=12)
        plan = SegmentPlan(ids, 5)  # segment 4 may be empty
        gradcheck(lambda x: op(x, plan).sum(), rng.normal(size=(12, 3)))

    def test_segment_max(self, rng):
        ids = rng.integers(0, 3, size=10)
        # Well-separated values: the max is locally smooth.
        data = np.linspace(0.0, 9.0, 30).reshape(10, 3) ** 1.1
        gradcheck(lambda x: segment_max(x, ids, 3).sum(), data)

    def test_segment_softmax(self, rng):
        ids = rng.integers(0, 3, size=10)
        gradcheck(
            lambda x: (segment_softmax(x, ids, 3) * Tensor(np.arange(10.0))).sum(),
            rng.normal(size=10),
        )
