"""Execution-policy semantics: dtype selection, workspaces, thread isolation.

PR 7's inference memory plane hangs off one ContextVar
(:data:`repro.nn.policy._ACTIVE_POLICY`); these tests pin the contracts
the serving stack builds on:

* the default policy is float64 with no workspace — bit-identical to the
  pre-policy stack, so training and the differential suite are untouched;
* ``use_dtype`` / ``serving_policy`` policies are re-entrant context
  managers, restore on exception unwind, and are thread-isolated exactly
  like ``no_grad`` / ``use_backend`` (fresh threads get the defaults;
  one policy *instance* may be entered concurrently from many threads);
* :class:`WorkspacePool` leases per-thread keyed buffers: distinct
  buffers within one pass, the *same* buffers across passes (hits), and
  an aggregate ``stats()`` view that is cheap and consistent;
* :func:`cast_module` converts a module's floating state once, in place.
"""

import threading

import numpy as np
import pytest

from repro.nn import (
    ExecutionPolicy,
    Linear,
    Module,
    Parameter,
    Tensor,
    WorkspacePool,
    active_dtype,
    active_policy,
    active_workspace,
    cast_module,
    serving_policy,
    use_dtype,
    use_policy,
    workspace_empty,
    workspace_zeros,
)
from tests.nn.test_thread_state import run_in_thread


class TestExecutionPolicy:
    def test_default_policy_is_float64_without_workspace(self):
        assert active_dtype() == np.float64
        assert active_policy().dtype == "float64"
        assert active_workspace() is None

    def test_tensor_materializes_in_active_dtype(self):
        data = [1.0, 2.0, 3.0]
        assert Tensor(data).data.dtype == np.float64
        with use_dtype("float32"):
            assert Tensor(data).data.dtype == np.float32
        assert Tensor(data).data.dtype == np.float64

    def test_unsupported_dtype_rejected(self):
        for bad in ("float16", "int64", "complex128", "f8"):
            with pytest.raises(ValueError, match="unsupported policy dtype"):
                ExecutionPolicy(dtype=bad)

    def test_nesting_restores_outer_policy(self):
        with use_dtype("float32"):
            assert active_dtype() == np.float32
            with use_dtype("float64"):
                assert active_dtype() == np.float64
            assert active_dtype() == np.float32
        assert active_dtype() == np.float64

    def test_exception_unwind_restores_policy(self):
        with pytest.raises(RuntimeError):
            with use_dtype("float32"):
                raise RuntimeError("boom")
        assert active_dtype() == np.float64

    def test_one_instance_is_reentrant(self):
        policy = use_dtype("float32")
        with policy:
            with policy:
                assert active_policy() is policy
            assert active_policy() is policy
        assert active_dtype() == np.float64

    def test_use_policy_is_an_identity_alias(self):
        policy = ExecutionPolicy(dtype="float32")
        assert use_policy(policy) is policy

    def test_serving_policy_preset(self):
        policy = serving_policy()
        assert policy.dtype == "float32"
        assert isinstance(policy.workspace, WorkspacePool)
        # Fresh pool per call: two services never share buffers by accident.
        assert serving_policy().workspace is not policy.workspace
        assert serving_policy(workspace=False).workspace is None
        assert serving_policy("float64").dtype == "float64"

    def test_active_workspace_follows_policy(self):
        policy = serving_policy()
        with policy:
            assert active_workspace() is policy.workspace
        assert active_workspace() is None


class TestPolicyThreadIsolation:
    def test_fresh_thread_gets_default_policy(self):
        with serving_policy():
            assert active_dtype() == np.float32
            # Spawned threads mirror no_grad/use_backend: defaults, not
            # the spawner's nesting.
            assert run_in_thread(active_dtype) == np.float64
            assert run_in_thread(active_workspace) is None
            assert active_dtype() == np.float32

    def test_policy_in_thread_does_not_leak_out(self):
        entered = threading.Event()
        release = threading.Event()

        def worker():
            with use_dtype("float32"):
                entered.set()
                release.wait(timeout=10)

        t = threading.Thread(target=worker)
        t.start()
        assert entered.wait(timeout=10)
        assert active_dtype() == np.float64
        release.set()
        t.join()

    def test_one_instance_shared_across_threads(self):
        """The serving worker pool enters ONE policy object from N threads;
        each thread's enter/exit must only touch its own token stack."""
        policy = serving_policy()
        barrier = threading.Barrier(4)
        errors = []

        def worker():
            try:
                for _ in range(25):
                    with policy:
                        barrier.wait(timeout=10)
                        assert active_policy() is policy
                        with policy:  # re-entrancy under contention
                            assert active_dtype() == np.float32
                    assert active_dtype() == np.float64
            except BaseException as err:  # pragma: no cover - carrier
                errors.append(err)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestWorkspacePool:
    def test_first_lease_misses_then_hits_across_passes(self):
        pool = WorkspacePool()
        pool.begin_pass()
        first = pool.zeros((4, 3), np.float32)
        pool.begin_pass()
        second = pool.zeros((4, 3), np.float32)
        assert second is first  # same buffer recycled
        stats = pool.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert stats["passes"] == 2

    def test_distinct_buffers_within_one_pass(self):
        pool = WorkspacePool()
        pool.begin_pass()
        a = pool.empty((8,), np.float32)
        b = pool.empty((8,), np.float32)
        assert a is not b  # cursor advanced: both leases live simultaneously
        pool.begin_pass()
        assert pool.empty((8,), np.float32) is a
        assert pool.empty((8,), np.float32) is b

    def test_zeros_rezeroes_recycled_buffers(self):
        pool = WorkspacePool()
        pool.begin_pass()
        buf = pool.zeros((5,), np.float64)
        buf += 7.0
        pool.begin_pass()
        again = pool.zeros((5,), np.float64)
        assert again is buf
        assert np.array_equal(again, np.zeros(5))

    def test_keys_separate_shapes_and_dtypes(self):
        pool = WorkspacePool()
        pool.begin_pass()
        f32 = pool.empty((4,), np.float32)
        f64 = pool.empty((4,), np.float64)
        other = pool.empty((5,), np.float32)
        assert len({id(f32), id(f64), id(other)}) == 3
        assert f32.dtype == np.float32 and f64.dtype == np.float64
        assert pool.stats()["buffers"] == 3

    def test_stats_shape_and_held_bytes(self):
        pool = WorkspacePool()
        assert pool.stats() == {
            "threads": 0, "hits": 0, "misses": 0, "passes": 0,
            "hit_rate": 0.0, "buffers": 0, "held_bytes": 0,
        }
        pool.begin_pass()
        pool.zeros((10,), np.float32)
        stats = pool.stats()
        assert stats["threads"] == 1
        assert stats["held_bytes"] == 40  # 10 * float32
        assert stats["hit_rate"] == 0.0
        pool.begin_pass()
        pool.zeros((10,), np.float32)
        assert pool.stats()["hit_rate"] == 0.5

    def test_reset_drops_buffers_and_counters(self):
        pool = WorkspacePool()
        pool.begin_pass()
        pool.zeros((6,), np.float64)
        pool.reset()
        stats = pool.stats()
        assert stats["buffers"] == 0 and stats["held_bytes"] == 0
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert stats["passes"] == 0

    def test_arenas_are_per_thread(self):
        """Two threads leasing the same key must get distinct buffers and
        never contend — each owns a private arena."""
        pool = WorkspacePool()
        barrier = threading.Barrier(3)
        ids = {}

        def worker(slot):
            barrier.wait(timeout=10)
            for _ in range(50):
                pool.begin_pass()
                buf = pool.zeros((16,), np.float32)
                buf.fill(slot)
                assert np.all(buf == slot)  # no cross-thread aliasing
            ids[slot] = id(buf)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(ids.values())) == 3
        stats = pool.stats()
        assert stats["threads"] == 3
        assert stats["misses"] == 3  # one allocation per thread, ever
        assert stats["hits"] == 3 * 50 - 3


class TestWorkspaceHelpers:
    def test_helpers_allocate_without_a_pool(self):
        out = workspace_zeros((3, 2), np.float32)
        assert out.dtype == np.float32 and np.array_equal(out, np.zeros((3, 2)))
        assert workspace_empty((3, 2), np.float64).shape == (3, 2)

    def test_helpers_lease_from_the_active_pool(self):
        policy = serving_policy()
        with policy:
            policy.workspace.begin_pass()
            a = workspace_zeros((7,), np.float32)
            policy.workspace.begin_pass()
            b = workspace_zeros((7,), np.float32)
        assert b is a
        assert policy.workspace.stats()["hits"] == 1


class _Stateful(Module):
    def __init__(self):
        super().__init__()
        self.lin = Linear(4, 3, np.random.default_rng(0))
        self.scale = Parameter(np.ones(3))
        self.register_buffer("running", np.zeros(3))


class TestCastModule:
    def test_casts_params_and_buffers_in_place(self):
        module = _Stateful()
        module.scale.grad = np.ones(3)
        returned = cast_module(module, "float32")
        assert returned is module
        for _, param in module.named_parameters():
            assert param.data.dtype == np.float32
            assert param.grad is None  # serving artifact, not training state
        for _, buf in module.named_buffers():
            assert buf.dtype == np.float32
        # set_buffer re-bound the attribute alongside the registry entry.
        assert module.running.dtype == np.float32

    def test_cast_is_value_preserving_roundtrip(self):
        module = _Stateful()
        before = {k: v.copy() for k, v in module.state_dict().items()}
        cast_module(module, "float32")
        cast_module(module, "float64")
        after = module.state_dict()
        for key, ref in before.items():
            assert np.allclose(after[key], ref, atol=1e-7), key

    def test_unsupported_cast_dtype_rejected(self):
        with pytest.raises(ValueError, match="unsupported cast dtype"):
            cast_module(_Stateful(), "float16")

    def test_forward_after_cast_runs_in_float32(self):
        module = cast_module(_Stateful(), "float32")
        with use_dtype("float32"):
            out = module.lin(Tensor(np.ones((2, 4))))
        assert out.data.dtype == np.float32
