"""The compiled C kernel backend (``repro.nn.compiled``).

Four contracts, layered on top of the registry-driven gradcheck sweep
(which already runs every op × backend when the compiled impls are
registered):

* **late-fill dispatch** — ``register_backend(name, impls=...)`` on an
  already-declared backend must invalidate the cached dispatch tables
  (a dispatcher called before the fill had resolved through the
  fallback chain and would otherwise serve the stale impl forever) and
  reject inconsistent refills;
* **no-compiler degradation** — with compiler discovery stubbed out,
  every public op must stay bit-identical to the reduceat backend,
  ``compiled_status()`` must report ``unavailable``, and *nothing* may
  be written to the build cache;
* **build manager** — first ``load()`` compiles exactly one shared
  object into the cache directory, a reset + reload is a disk-cache
  hit, and the kernels are bit-identical to the reference backends for
  float64 and float32, forward and gradient, including the fused LSTM
  scan and the LSTM/LSTMCell modules that route through it;
* **surfacing** — ``InferenceService.stats()`` and the CLI
  ``backend-info`` target expose the build status.
"""

import os

import numpy as np
import pytest

from repro.gnn import GNNEncoder
from repro.nn import (
    LSTM,
    Tensor,
    no_grad,
    use_backend,
    use_dtype,
)
from repro.nn import rnn as _rnn
from repro.nn.compiled import build, compiled_status
from repro.nn.compiled import kernels as _kernels
from repro.nn.ops import OP_REGISTRY, OpRegistry
from repro.serve import InferenceService

HAVE_CC = build.find_compiler() is not None

needs_cc = pytest.mark.skipif(not HAVE_CC,
                              reason="no C compiler discovered")


def _fresh_registry() -> OpRegistry:
    registry = OpRegistry()
    registry.register_backend("legacy")
    registry.register_backend("reduceat", fallback="legacy")
    registry.register_backend("compiled", fallback="reduceat")
    registry.register(
        "double",
        backends={"legacy": lambda x: 2 * x, "reduceat": lambda x: x * 2},
        adjoint="2 * g", samples=lambda dtype: [])
    return registry


class TestLateBackendFill:
    def test_fill_invalidates_cached_dispatch_tables(self):
        # Regression: pre-fix, the dispatcher's per-backend table kept
        # the fallback resolution cached across a late fill, so the
        # compiled impl registered after first dispatch was never used.
        registry = _fresh_registry()
        dispatch = registry.dispatcher("double")
        with use_backend("compiled"):
            assert dispatch(3) == 6  # resolved through the fallback chain
            registry.register_backend(
                "compiled", impls={"double": lambda x: ("compiled", 2 * x)})
            assert dispatch(3) == ("compiled", 6)

    def test_fill_resolves_for_other_backends_unchanged(self):
        registry = _fresh_registry()
        registry.register_backend(
            "compiled", impls={"double": lambda x: ("compiled", 2 * x)})
        assert registry.resolve("double", "compiled") is \
            registry.get("double").impls["compiled"]
        assert registry.resolve("double", "reduceat") is \
            registry.get("double").impls["reduceat"]

    def test_redeclare_without_impls_rejected(self):
        registry = _fresh_registry()
        with pytest.raises(ValueError, match="already registered"):
            registry.register_backend("compiled", fallback="reduceat")

    def test_inconsistent_fallback_refill_rejected(self):
        registry = _fresh_registry()
        with pytest.raises(ValueError, match="cannot refill"):
            registry.register_backend(
                "compiled", fallback="legacy",
                impls={"double": lambda x: x})

    def test_fill_for_unregistered_op_rejected(self):
        registry = _fresh_registry()
        with pytest.raises(ValueError, match="unregistered op"):
            registry.register_backend(
                "compiled", impls={"phantom": lambda x: x})

    def test_duplicate_impl_rejected(self):
        registry = _fresh_registry()
        registry.register_backend(
            "compiled", impls={"double": lambda x: x})
        with pytest.raises(ValueError, match="already has a 'compiled'"):
            registry.register_backend(
                "compiled", impls={"double": lambda x: x})

    def test_declaring_with_undeclared_fallback_rejected(self):
        registry = OpRegistry()
        with pytest.raises(ValueError, match="undeclared"):
            registry.register_backend("compiled", fallback="reduceat")


def _forward(op_name, backend, sample):
    """One forward through the dispatcher; plain array out."""
    dispatch = OP_REGISTRY.dispatcher(op_name)
    entry = OP_REGISTRY.get(op_name)
    with use_backend(backend):
        if entry.differentiable:
            return dispatch(Tensor(sample.data.copy()), *sample.args).data
        return np.asarray(dispatch(sample.data.copy(), *sample.args))


@pytest.fixture
def no_compiler(monkeypatch, tmp_path):
    """Compiler discovery stubbed out + a private (empty) build cache."""
    cache = tmp_path / "cache"
    monkeypatch.setattr(build, "find_compiler", lambda: None)
    # ``disabled`` (explicit env opt-out) is a distinct status state;
    # this fixture models a machine with no discoverable compiler.
    monkeypatch.delenv("REPRO_COMPILED_DISABLE", raising=False)
    monkeypatch.setenv("REPRO_COMPILED_CACHE", str(cache))
    build.reset()
    yield cache
    build.reset()


class TestNoCompilerDegradation:
    def test_status_reports_unavailable(self, no_compiler):
        status = compiled_status()
        assert status["state"] == "unavailable"
        assert status["compiler"] is None
        assert status["loaded"] is False
        assert status["build_failed"] is False

    def test_load_returns_none(self, no_compiler):
        assert build.load() is None
        assert compiled_status()["attempted"] is True
        assert compiled_status()["state"] == "unavailable"

    def test_every_op_matches_reduceat_bitwise(self, no_compiler):
        for op_name in OP_REGISTRY.ops():
            for sample in OP_REGISTRY.get(op_name).samples(np.float64):
                out = _forward(op_name, "compiled", sample)
                ref = _forward(op_name, "reduceat", sample)
                assert np.array_equal(out, ref), (op_name, sample.label)

    def test_zero_build_cache_writes(self, no_compiler):
        build.load()
        for sample in OP_REGISTRY.get("segment_sum").samples(np.float64):
            _forward("segment_sum", "compiled", sample)
        assert not no_compiler.exists() or list(no_compiler.iterdir()) == []


@pytest.fixture
def fresh_cache(monkeypatch, tmp_path):
    """A private empty build cache; build state reset around the test."""
    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_COMPILED_CACHE", str(cache))
    build.reset()
    yield cache
    build.reset()


@pytest.mark.compiled
@needs_cc
class TestBuildManager:
    def test_first_load_builds_one_shared_object(self, fresh_cache):
        lib = build.load()
        assert lib is not None
        names = sorted(os.listdir(fresh_cache))
        assert len(names) == 1 and names[0].endswith(".so")
        assert names[0].startswith("repro_kernels_")
        status = compiled_status()
        assert status["state"] == "available"
        assert status["loaded"] is True
        assert status["disk_cache_hit"] is False
        assert status["cache_dir"] == str(fresh_cache)

    def test_reset_then_reload_hits_the_disk_cache(self, fresh_cache):
        assert build.load() is not None
        before = sorted(os.listdir(fresh_cache))
        build.reset()
        assert build.load() is not None
        assert compiled_status()["disk_cache_hit"] is True
        assert sorted(os.listdir(fresh_cache)) == before

    def test_status_never_triggers_a_build(self, fresh_cache):
        status = compiled_status()
        assert status["state"] == "available"
        assert status["attempted"] is False
        assert not fresh_cache.exists()


@pytest.mark.compiled
@needs_cc
class TestCompiledKernelParity:
    @pytest.mark.parametrize("dtype_name", ["float64", "float32"])
    def test_forward_bitwise_vs_reduceat_and_legacy(self, dtype_name):
        dtype = np.dtype(dtype_name).type
        for op_name in OP_REGISTRY.ops():
            entry = OP_REGISTRY.get(op_name)
            if "compiled" not in entry.impls:
                continue
            for sample in entry.samples(dtype):
                with use_dtype(dtype_name):
                    out = _forward(op_name, "compiled", sample)
                    for reference in ("reduceat", "legacy"):
                        ref = _forward(op_name, reference, sample)
                        assert np.array_equal(out, ref), \
                            (op_name, reference, sample.label)

    def test_lstm_scan_with_state_matches_reference(self):
        entry = OP_REGISTRY.get("lstm_scan")
        for dtype_name in ("float64", "float32"):
            dtype = np.dtype(dtype_name).type
            for sample in entry.samples(dtype):
                with no_grad(), use_dtype(dtype_name):
                    out_c, h_c, c_c = _kernels._lstm_scan_compiled(
                        Tensor(sample.data.copy()), *sample.args,
                        return_state=True)
                    out_r, h_r, c_r = _rnn._lstm_scan_reference(
                        Tensor(sample.data.copy()), *sample.args,
                        return_state=True)
                assert np.array_equal(out_c.data, out_r.data), sample.label
                assert np.array_equal(h_c.data, h_r.data), sample.label
                assert np.array_equal(c_c.data, c_r.data), sample.label

    @pytest.mark.parametrize("bidirectional", [False, True])
    def test_lstm_module_scan_matches_tape_forward(self, bidirectional):
        rng = np.random.default_rng(7)
        lstm = LSTM(5, 4, rng, bidirectional=bidirectional)
        steps = [Tensor(rng.normal(size=(3, 5))) for _ in range(4)]
        # Grad mode keeps the original tape composition; no_grad routes
        # through the fused scan. They must agree bitwise per backend.
        tape = [t.data.copy() for t in lstm(steps)]
        for backend in ("legacy", "reduceat", "compiled"):
            with no_grad(), use_backend(backend):
                scanned = lstm(steps)
            for got, want in zip(scanned, tape):
                assert np.array_equal(got.data, want), (backend, bidirectional)

    def test_gradients_route_through_the_reference(self):
        # With grad enabled the compiled backend must delegate to the
        # tape-building reference — gradients stay bitwise identical.
        entry = OP_REGISTRY.get("lstm_scan")
        dispatch = OP_REGISTRY.dispatcher("lstm_scan")
        for sample in entry.samples(np.float64):
            grads = {}
            for backend in ("legacy", "compiled"):
                with use_backend(backend):
                    x = Tensor(sample.data.copy(), requires_grad=True)
                    out = dispatch(x, *sample.args)
                    out.backward(np.ones_like(out.data))
                grads[backend] = (out.data.copy(), x.grad.copy())
            assert np.array_equal(grads["compiled"][0], grads["legacy"][0])
            assert np.array_equal(grads["compiled"][1], grads["legacy"][1])


def _encoder_factory():
    return GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=0)


class TestSurfacing:
    def test_service_stats_expose_compiled_status(self):
        service = InferenceService(_encoder_factory, num_tasks=3)
        compiled = service.stats()["compiled"]
        assert compiled["state"] in ("available", "unavailable", "disabled")
        assert compiled.keys() == compiled_status().keys()

    def test_cli_backend_info(self, capsys):
        from repro.cli import main
        assert main(["backend-info"]) == 0
        captured = capsys.readouterr().out
        assert "declared backends (fallback chains):" in captured
        assert "compiled -> reduceat -> legacy" in captured
        assert "compiled backend status:" in captured
        for op_name in OP_REGISTRY.ops():
            assert op_name in captured
