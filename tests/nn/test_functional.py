"""Tests for functional ops: activations, losses, Gumbel-softmax."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F
from tests.conftest import gradcheck


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = F.softmax(Tensor(np.random.default_rng(0).normal(size=(5, 4)))).data
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_stable_for_large_logits(self):
        out = F.softmax(Tensor([1000.0, 1000.0])).data
        assert np.allclose(out, [0.5, 0.5])

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))

    def test_softmax_gradcheck(self):
        rng = np.random.default_rng(2)
        c = rng.normal(size=(3, 4))
        gradcheck(lambda x: (F.softmax(x) * Tensor(c)).sum(), rng.normal(size=(3, 4)))

    def test_log_softmax_gradcheck(self):
        rng = np.random.default_rng(3)
        c = rng.normal(size=(3, 4))
        gradcheck(lambda x: (F.log_softmax(x) * Tensor(c)).sum(), rng.normal(size=(3, 4)))

    def test_softmax_axis0(self):
        out = F.softmax(Tensor(np.zeros((2, 3))), axis=0).data
        assert np.allclose(out, 0.5)


class TestLosses:
    def test_bce_matches_manual(self):
        logits = np.array([0.0, 2.0, -2.0])
        y = np.array([1.0, 1.0, 0.0])
        expected = np.mean(
            np.log1p(np.exp(-np.abs(logits))) + np.maximum(logits, 0) - logits * y
        )
        got = F.binary_cross_entropy_with_logits(Tensor(logits), y).item()
        assert abs(got - expected) < 1e-10

    def test_bce_mask_excludes_entries(self):
        logits = Tensor([[0.0, 100.0]])
        y = np.array([[1.0, 0.0]])
        mask = np.array([[1.0, 0.0]])
        loss = F.binary_cross_entropy_with_logits(logits, y, mask).item()
        assert abs(loss - np.log(2.0)) < 1e-9

    def test_bce_gradcheck(self):
        rng = np.random.default_rng(4)
        y = (rng.random((4, 2)) > 0.5).astype(float)
        gradcheck(
            lambda x: F.binary_cross_entropy_with_logits(x, y),
            rng.normal(size=(4, 2)),
        )

    def test_bce_extreme_logits_finite(self):
        loss = F.binary_cross_entropy_with_logits(
            Tensor([1e5, -1e5]), np.array([0.0, 1.0])
        )
        assert np.isfinite(loss.item())

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor([[100.0, 0.0], [0.0, 100.0]])
        assert F.cross_entropy(logits, np.array([0, 1])).item() < 1e-8

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4)))
        assert abs(F.cross_entropy(logits, np.array([0, 3])).item() - np.log(4)) < 1e-9

    def test_cross_entropy_gradcheck(self):
        rng = np.random.default_rng(5)
        targets = np.array([0, 2, 1])
        gradcheck(lambda x: F.cross_entropy(x, targets), rng.normal(size=(3, 3)))

    def test_mse_zero_for_equal(self):
        assert F.mse_loss(Tensor([1.0, 2.0]), np.array([1.0, 2.0])).item() == 0.0

    def test_mse_gradcheck(self):
        y = np.array([0.5, -1.0])
        gradcheck(lambda x: F.mse_loss(x, y), np.array([1.0, 2.0]))

    def test_l2_norm_squared(self):
        assert F.l2_norm_squared(Tensor([3.0, 4.0])).item() == 25.0


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, rng, training=False)
        assert np.allclose(out.data, 1.0)

    def test_zero_rate_identity(self, rng):
        out = F.dropout(Tensor(np.ones(10)), 0.0, rng, training=True)
        assert np.allclose(out.data, 1.0)

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(200_00))
        out = F.dropout(x, 0.5, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_invalid_rate_raises(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), 1.0, rng)

    def test_gradient_masked(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones(100), requires_grad=True)
        out = F.dropout(x, 0.5, rng, training=True)
        out.sum().backward()
        dropped = out.data == 0.0
        assert np.allclose(x.grad[dropped], 0.0)
        assert np.allclose(x.grad[~dropped], 2.0)


class TestGumbelSoftmax:
    def test_output_is_distribution(self, rng):
        out = F.gumbel_softmax(Tensor(np.zeros(5)), tau=0.5, rng=rng)
        assert np.all(out.data >= 0) and abs(out.data.sum() - 1.0) < 1e-9

    def test_low_temperature_near_onehot(self):
        rng = np.random.default_rng(0)
        out = F.gumbel_softmax(Tensor(np.zeros(5)), tau=0.01, rng=rng)
        assert out.data.max() > 0.999

    def test_hard_returns_exact_onehot(self, rng):
        out = F.gumbel_softmax(Tensor(np.zeros(4)), tau=0.5, rng=rng, hard=True)
        assert sorted(out.data.tolist()) == [0.0, 0.0, 0.0, 1.0]

    def test_hard_straight_through_gradient_flows(self):
        rng = np.random.default_rng(0)
        alpha = Tensor(np.zeros(4), requires_grad=True)
        out = F.gumbel_softmax(alpha, tau=0.5, rng=rng, hard=True)
        (out * Tensor(np.arange(4.0))).sum().backward()
        assert alpha.grad is not None and np.abs(alpha.grad).sum() > 0

    def test_invalid_temperature_raises(self, rng):
        with pytest.raises(ValueError):
            F.gumbel_softmax(Tensor(np.zeros(3)), tau=0.0, rng=rng)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_biased_alpha_dominates_sampling(self, seed):
        # With a strongly biased alpha the argmax should usually match.
        rng = np.random.default_rng(seed)
        alpha = Tensor(np.array([5.0, 0.0, 0.0]))
        hits = sum(
            int(np.argmax(F.gumbel_softmax(alpha, 1.0, rng).data) == 0)
            for _ in range(20)
        )
        assert hits >= 10

    def test_gradient_direction_increases_selected_prob(self):
        # Minimizing -phi[0] should raise alpha[0].
        rng = np.random.default_rng(3)
        alpha = Tensor(np.zeros(3), requires_grad=True)
        loss = -F.gumbel_softmax(alpha, 1.0, rng)[0]
        loss.backward()
        assert alpha.grad[0] < 0  # gradient descent increases alpha[0]


class TestUtilities:
    def test_one_hot_shape_and_values(self):
        out = F.one_hot(np.array([0, 2]), 3)
        assert out.shape == (2, 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_softmax_np_matches_tensor_softmax(self):
        x = np.random.default_rng(0).normal(size=(2, 5))
        assert np.allclose(F.softmax_np(x), F.softmax(Tensor(x)).data)
