"""Property/fuzz tests for ``SegmentPlan`` edge cases.

`tests/nn/test_segment.py` covers a fixed set of boundary index arrays;
here hypothesis *generates* adversarial segment layouts — empty segments
interleaved with large ones, zero-length index arrays, single-segment
batches, non-contiguous segment ids with leading/trailing gaps — and
asserts, for every plan-backed op:

* values and input gradients match the legacy ``np.add.at`` backend
  bit-for-bit (sum/mean/max/gather) or to 1e-12 (softmax, whose
  normalizer arithmetic is shared but exponent-order-sensitive);
* the plan's structural invariants hold (counts/offsets/indptr are
  consistent, the stable-sort permutation is a permutation);
* finite-difference gradcheck passes on the exact generated layout.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    SegmentPlan,
    Tensor,
    gather_segments,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
    serving_policy,
    use_backend,
    use_dtype,
)
from tests.conftest import gradcheck

#: Ops over per-item rows, claimed bit-identical to the legacy backend.
EXACT_OPS = [segment_sum, segment_mean, segment_max]


@st.composite
def segment_layouts(draw):
    """A ``(segment_ids, num_segments)`` pair with adversarial structure.

    Builds the layout from per-segment counts (not uniform ids), so empty
    segments interleaved with large ones — the case uniform sampling
    almost never produces — are common.  The row order is then permuted so
    segments are non-contiguous in the index array.
    """
    num_segments = draw(st.integers(1, 9))
    counts = draw(st.lists(
        st.one_of(st.just(0), st.integers(1, 3), st.integers(20, 40)),
        min_size=num_segments, max_size=num_segments))
    ids = np.repeat(np.arange(num_segments), counts)
    seed = draw(st.integers(0, 2 ** 32 - 1))
    rng = np.random.default_rng(seed)
    rng.shuffle(ids)
    return ids.astype(np.int64), num_segments, seed


def _run(op, data, index, num_segments):
    x = Tensor(data.copy(), requires_grad=True)
    out = op(x, index, num_segments)
    seed = np.cos(np.arange(out.size, dtype=np.float64)).reshape(out.shape)
    out.backward(seed)
    return out.data.copy(), x.grad.copy()


class TestFuzzBackendParity:
    @given(segment_layouts())
    @settings(max_examples=60, deadline=None)
    def test_exact_ops_bit_identical_to_legacy(self, layout):
        ids, n, seed = layout
        data = np.random.default_rng(seed).normal(size=(ids.size, 3))
        plan = SegmentPlan(ids, n)
        for op in EXACT_OPS:
            out_new, grad_new = _run(op, data, plan, None)
            with use_backend("legacy"):
                out_ref, grad_ref = _run(op, data, ids, n)
            assert np.array_equal(out_new, out_ref), op.__name__
            assert np.array_equal(grad_new, grad_ref), op.__name__

    @given(segment_layouts())
    @settings(max_examples=60, deadline=None)
    def test_gather_segments_bit_identical_to_legacy(self, layout):
        """gather broadcasts per-*segment* rows to items; its adjoint is a
        scatter-add that must match np.add.at exactly."""
        ids, n, seed = layout
        data = np.random.default_rng(seed).normal(size=(n, 3))
        out_new, grad_new = _run(gather_segments, data, SegmentPlan(ids, n), None)
        with use_backend("legacy"):
            out_ref, grad_ref = _run(gather_segments, data, ids, n)
        assert np.array_equal(out_new, out_ref)
        assert np.array_equal(grad_new, grad_ref)

    @given(segment_layouts())
    @settings(max_examples=60, deadline=None)
    def test_softmax_matches_legacy(self, layout):
        ids, n, seed = layout
        if ids.size == 0:
            return  # softmax over zero rows is vacuous
        data = np.random.default_rng(seed).normal(size=ids.size)
        out_new, grad_new = _run(segment_softmax, data, SegmentPlan(ids, n), None)
        with use_backend("legacy"):
            out_ref, grad_ref = _run(segment_softmax, data, ids, n)
        assert np.abs(out_new - out_ref).max(initial=0.0) <= 1e-12
        assert np.abs(grad_new - grad_ref).max(initial=0.0) <= 1e-12

    @given(segment_layouts())
    @settings(max_examples=60, deadline=None)
    def test_plan_structural_invariants(self, layout):
        ids, n, _ = layout
        plan = SegmentPlan(ids, n)
        assert np.array_equal(np.sort(plan.order), np.arange(ids.size))
        assert np.array_equal(plan.counts, np.bincount(ids, minlength=n))
        assert plan.counts.sum() == plan.num_items == ids.size
        assert np.array_equal(plan.indptr, np.concatenate([[0], np.cumsum(plan.counts)]))
        assert np.array_equal(plan.offsets, plan.indptr[:-1])
        assert np.array_equal(plan.segments, np.flatnonzero(plan.counts))
        assert plan.full == (plan.segments.size == n)
        # Sorted ids are non-decreasing and stable within segments.
        sorted_ids = ids[plan.order]
        assert np.all(np.diff(sorted_ids) >= 0)
        for s in plan.segments:
            rows = plan.order[plan.offsets[s]:plan.indptr[s + 1]]
            assert np.all(np.diff(rows) > 0)  # original order preserved

    @given(segment_layouts())
    @settings(max_examples=15, deadline=None)
    def test_gradcheck_on_generated_layouts(self, layout):
        ids, n, seed = layout
        if ids.size == 0:
            return  # finite differencing over zero inputs is vacuous
        rng = np.random.default_rng(seed)
        # Truncate to keep the O(size) finite-difference loop fast; the
        # truncated prefix keeps the layout's gaps and interleaving.
        data = rng.normal(size=(min(ids.size, 12), 2))
        small_plan = SegmentPlan(ids[:data.shape[0]], n)
        for op in (segment_sum, segment_mean):
            gradcheck(lambda x, op=op: op(x, small_plan).sum(), data)


class TestFuzzFloat32Policy:
    """The same adversarial layouts under the serving dtype (PR 7).

    Float32 kernels cannot be bit-identical to the float64 reference, so
    the contract is split: toleranced agreement with the float64 values
    (the accumulation order is unchanged, only the precision drops), and
    *bit*-identity between the plain float32 path and the workspace-pool
    path — pooling recycles output buffers, it must never change a single
    bit of what lands in them.
    """

    #: |f32 - f64| bound for ~Normal(0,1) rows over <=200-item segments:
    #: float32 eps is 1.2e-7; sums of tens of unit-scale terms stay well
    #: under 1e-4 absolute error.
    TOL = 1e-4

    @given(segment_layouts())
    @settings(max_examples=25, deadline=None)
    def test_float32_tracks_float64_within_tolerance(self, layout):
        ids, n, seed = layout
        data = np.random.default_rng(seed).normal(size=(ids.size, 3))
        plan = SegmentPlan(ids, n)
        for op in EXACT_OPS:
            with use_dtype("float32"):
                out32, grad32 = _run(op, data, plan, None)
            out64, grad64 = _run(op, data, plan, None)
            assert out32.dtype == np.float32, op.__name__
            assert grad32.dtype == np.float32, op.__name__
            assert np.abs(out32 - out64).max(initial=0.0) <= self.TOL, op.__name__
            assert np.abs(grad32 - grad64).max(initial=0.0) <= self.TOL, op.__name__

    @given(segment_layouts())
    @settings(max_examples=25, deadline=None)
    def test_workspace_pool_is_bit_identical_to_plain_float32(self, layout):
        ids, n, seed = layout
        data = np.random.default_rng(seed).normal(size=(ids.size, 3))
        plan = SegmentPlan(ids, n)
        for op in EXACT_OPS:
            with use_dtype("float32"):
                out_plain, grad_plain = _run(op, data, plan, None)
            with serving_policy():
                out_pool, grad_pool = _run(op, data, plan, None)
            assert np.array_equal(out_pool, out_plain), op.__name__
            assert np.array_equal(grad_pool, grad_plain), op.__name__

    @given(segment_layouts())
    @settings(max_examples=15, deadline=None)
    def test_float32_softmax_stays_normalized(self, layout):
        ids, n, seed = layout
        if ids.size == 0:
            return
        data = np.random.default_rng(seed).normal(size=ids.size)
        with use_dtype("float32"):
            out = segment_softmax(Tensor(data), SegmentPlan(ids, n), None)
            assert out.data.dtype == np.float32
            sums = np.zeros(n, dtype=np.float64)
            np.add.at(sums, ids, out.data.astype(np.float64))
        occupied = np.bincount(ids, minlength=n) > 0
        assert np.allclose(sums[occupied], 1.0, atol=1e-5)


class TestNamedEdgeCases:
    """The ISSUE's named boundaries, pinned explicitly (not just fuzzed)."""

    CASES = {
        "empty_interleaved_with_large": (
            np.repeat(np.arange(5), [30, 0, 1, 0, 25]), 5),
        "zero_length_index": (np.zeros(0, dtype=np.int64), 6),
        "single_segment": (np.zeros(40, dtype=np.int64), 1),
        "noncontiguous_ids_with_gaps": (np.array([7, 2, 7, 0, 2, 7, 9]), 11),
        "all_segments_empty": (np.zeros(0, dtype=np.int64), 1),
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_parity_and_shapes(self, case):
        ids, n = self.CASES[case]
        ids = np.asarray(ids, dtype=np.int64)
        rng = np.random.default_rng(5)
        data = rng.normal(size=(ids.size, 4))
        plan = SegmentPlan(ids, n)
        for op in EXACT_OPS:
            out_new, grad_new = _run(op, data, plan, None)
            with use_backend("legacy"):
                out_ref, grad_ref = _run(op, data, ids, n)
            assert out_new.shape == out_ref.shape, op.__name__
            assert np.array_equal(out_new, out_ref), op.__name__
            assert np.array_equal(grad_new, grad_ref), op.__name__
        seg_data = rng.normal(size=(n, 4))
        out_new, grad_new = _run(gather_segments, seg_data, plan, None)
        with use_backend("legacy"):
            out_ref, grad_ref = _run(gather_segments, seg_data, ids, n)
        assert np.array_equal(out_new, out_ref)
        assert np.array_equal(grad_new, grad_ref)

    def test_empty_interleaved_gradcheck(self):
        ids, n = self.CASES["empty_interleaved_with_large"]
        small = np.asarray(ids[:10], dtype=np.int64)
        plan = SegmentPlan(small, n)
        rng = np.random.default_rng(2)
        for op in (segment_sum, segment_mean):
            gradcheck(lambda x, op=op: op(x, plan).sum(),
                      rng.normal(size=(10, 2)))
        gradcheck(
            lambda x: (segment_softmax(x, plan) * Tensor(np.arange(10.0))).sum(),
            rng.normal(size=10))

    def test_single_segment_softmax_normalizes(self):
        ids = np.zeros(40, dtype=np.int64)
        out = segment_softmax(Tensor(np.linspace(-3, 3, 40)), ids, 1)
        assert np.isclose(out.data.sum(), 1.0)

    def test_zero_length_ops_produce_zero_rows(self):
        ids = np.zeros(0, dtype=np.int64)
        x = Tensor(np.zeros((0, 3)), requires_grad=True)
        for op in (segment_sum, segment_mean, segment_max):
            out = op(x, ids, 4)
            assert out.shape == (4, 3)
            assert np.array_equal(out.data, np.zeros((4, 3)))
        out = gather_segments(Tensor(np.zeros((4, 3))), ids, 4)
        assert out.shape == (0, 3)
