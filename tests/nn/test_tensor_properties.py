"""Property-based tests for the autograd engine (hypothesis).

These check algebraic identities of differentiation that must hold for ANY
input, complementing the pointwise finite-difference checks in
``test_tensor.py``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concatenate, gather, segment_mean, segment_sum


def arrays(min_rows=1, max_rows=6, min_cols=1, max_cols=5):
    return st.builds(
        lambda seed, r, c: np.random.default_rng(seed).normal(size=(r, c)),
        st.integers(0, 10_000),
        st.integers(min_rows, max_rows),
        st.integers(min_cols, max_cols),
    )


class TestLinearity:
    @given(data=arrays(), scale=st.floats(-3, 3))
    @settings(max_examples=40, deadline=None)
    def test_gradient_of_scaled_sum_is_constant(self, data, scale):
        x = Tensor(data, requires_grad=True)
        (x * scale).sum().backward()
        assert np.allclose(x.grad, scale)

    @given(data=arrays())
    @settings(max_examples=40, deadline=None)
    def test_grad_of_sum_of_two_paths_adds(self, data):
        """d/dx [f(x) + g(x)] == d/dx f(x) + d/dx g(x)."""
        x1 = Tensor(data.copy(), requires_grad=True)
        (x1 * 2.0).sum().backward()
        g_f = x1.grad.copy()

        x2 = Tensor(data.copy(), requires_grad=True)
        (x2 ** 2).sum().backward()
        g_g = x2.grad.copy()

        x3 = Tensor(data.copy(), requires_grad=True)
        ((x3 * 2.0).sum() + (x3 ** 2).sum()).backward()
        assert np.allclose(x3.grad, g_f + g_g)

    @given(data=arrays())
    @settings(max_examples=30, deadline=None)
    def test_backward_seed_scales_gradient(self, data):
        x1 = Tensor(data.copy(), requires_grad=True)
        (x1.tanh()).sum().backward()
        base = x1.grad.copy()

        x2 = Tensor(data.copy(), requires_grad=True)
        out = x2.tanh().sum()
        out.backward(np.array(3.0))
        assert np.allclose(x2.grad, 3.0 * base)


class TestStructuralIdentities:
    @given(data=arrays(min_rows=2))
    @settings(max_examples=30, deadline=None)
    def test_concat_then_split_grad_identity(self, data):
        """Sum after concat along rows == sum of parts; grads are all ones."""
        a = Tensor(data.copy(), requires_grad=True)
        b = Tensor(data.copy(), requires_grad=True)
        concatenate([a, b], axis=0).sum().backward()
        assert np.allclose(a.grad, 1.0) and np.allclose(b.grad, 1.0)

    @given(data=arrays(min_rows=3), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_gather_of_all_rows_is_identity(self, data, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(data.shape[0])
        x = Tensor(data, requires_grad=True)
        out = gather(x, perm)
        assert np.allclose(out.data, data[perm])
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)  # each row gathered exactly once

    @given(data=arrays(min_rows=2), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_segment_sum_total_preserved(self, data, seed):
        rng = np.random.default_rng(seed)
        segs = rng.integers(0, 3, size=data.shape[0])
        out = segment_sum(Tensor(data), segs, 3)
        assert np.allclose(out.data.sum(axis=0), data.sum(axis=0))

    @given(data=arrays(min_rows=2))
    @settings(max_examples=30, deadline=None)
    def test_segment_mean_of_single_segment_is_mean(self, data):
        segs = np.zeros(data.shape[0], dtype=np.int64)
        out = segment_mean(Tensor(data), segs, 1)
        assert np.allclose(out.data[0], data.mean(axis=0))


class TestChainRule:
    @given(data=arrays(max_rows=4, max_cols=3))
    @settings(max_examples=30, deadline=None)
    def test_composition_matches_manual_chain(self, data):
        """d/dx sum(sigmoid(x)^2) == 2 sigmoid(x) sigmoid'(x)."""
        x = Tensor(data, requires_grad=True)
        (x.sigmoid() ** 2).sum().backward()
        s = 1.0 / (1.0 + np.exp(-data))
        expected = 2.0 * s * s * (1.0 - s)
        assert np.allclose(x.grad, expected, atol=1e-10)

    @given(data=arrays(max_rows=4, max_cols=3))
    @settings(max_examples=30, deadline=None)
    def test_detach_blocks_chain(self, data):
        x = Tensor(data, requires_grad=True)
        (x.detach() * 2.0 + x).sum().backward()
        assert np.allclose(x.grad, 1.0)  # only the non-detached path counts
