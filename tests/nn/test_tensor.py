"""Tests for the autograd engine: ops, broadcasting, and exact adjoints."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Tensor,
    as_tensor,
    concatenate,
    gather,
    no_grad,
    segment_max,
    segment_mean,
    segment_sum,
    stack,
    where,
)
from tests.conftest import gradcheck


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.data.dtype == np.float64

    def test_construction_from_tensor_shares_semantics(self):
        t = Tensor([1.0, 2.0])
        u = Tensor(t)
        assert np.array_equal(u.data, t.data)

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_detach_severs_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3.0).detach()
        assert not y.requires_grad
        assert y._prev == ()

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_copy_independent(self):
        t = Tensor([1.0])
        c = t.copy()
        c.data[0] = 9.0
        assert t.data[0] == 1.0


class TestArithmetic:
    def test_add_backward(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = Tensor([3.0, 4.0], requires_grad=True)
        (x + y).sum().backward()
        assert np.allclose(x.grad, [1, 1])
        assert np.allclose(y.grad, [1, 1])

    def test_radd_scalar(self):
        x = Tensor([1.0], requires_grad=True)
        (2.0 + x).backward()
        assert np.allclose(x.grad, [1.0])

    def test_sub_and_rsub(self):
        x = Tensor([5.0], requires_grad=True)
        (10.0 - x).backward()
        assert np.allclose(x.grad, [-1.0])

    def test_mul_backward(self):
        x = Tensor([2.0], requires_grad=True)
        y = Tensor([3.0], requires_grad=True)
        (x * y).backward()
        assert np.allclose(x.grad, [3.0])
        assert np.allclose(y.grad, [2.0])

    def test_div_backward(self):
        gradcheck(lambda x: (x / 2.5).sum(), np.array([1.0, -2.0, 3.0]))

    def test_rdiv(self):
        gradcheck(lambda x: (1.0 / x).sum(), np.array([1.0, 2.0, 4.0]))

    def test_pow_backward(self):
        gradcheck(lambda x: (x ** 3).sum(), np.array([1.0, -2.0, 0.5]))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self):
        x = Tensor([1.0], requires_grad=True)
        (-x).backward()
        assert np.allclose(x.grad, [-1.0])

    def test_matmul_2d(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(3, 2))
        gradcheck(lambda x: (x @ Tensor(w)).sum(), rng.normal(size=(4, 3)))

    def test_matmul_grad_wrt_rhs(self):
        x = Tensor(np.ones((2, 3)))
        w = Tensor(np.ones((3, 2)), requires_grad=True)
        (x @ w).sum().backward()
        assert np.allclose(w.grad, 2.0 * np.ones((3, 2)))

    def test_gradient_accumulates_over_reuse(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0 + x * 3.0).backward()
        assert np.allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None


class TestBroadcasting:
    def test_add_broadcast_bias(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        assert np.allclose(b.grad, [4, 4, 4])

    def test_mul_broadcast_column(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        c = Tensor(np.ones((4, 1)), requires_grad=True)
        (x * c).sum().backward()
        assert c.grad.shape == (4, 1)
        assert np.allclose(c.grad, 3.0)

    def test_scalar_broadcast(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (x * s).sum().backward()
        assert np.allclose(s.grad, 4.0)

    @given(rows=st.integers(1, 5), cols=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_broadcast_grad_shapes_match(self, rows, cols):
        x = Tensor(np.ones((rows, cols)), requires_grad=True)
        b = Tensor(np.ones(cols), requires_grad=True)
        ((x + b) * 2.0).sum().backward()
        assert x.grad.shape == (rows, cols)
        assert b.grad.shape == (cols,)
        assert np.allclose(b.grad, 2.0 * rows)


class TestElementwise:
    @pytest.mark.parametrize("fn_name", ["exp", "tanh", "sigmoid", "relu", "abs", "sqrt"])
    def test_gradcheck_unary(self, fn_name):
        data = np.array([0.5, 1.5, 2.5, 0.1])  # positive for sqrt/log safety
        gradcheck(lambda x: getattr(x, fn_name)().sum(), data)

    def test_log_gradcheck(self):
        gradcheck(lambda x: x.log().sum(), np.array([0.5, 1.0, 3.0]))

    def test_relu_kills_negative_grad(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        x.relu().sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0])

    def test_leaky_relu_slope(self):
        x = Tensor([-2.0, 2.0], requires_grad=True)
        x.leaky_relu(0.1).sum().backward()
        assert np.allclose(x.grad, [0.1, 1.0])

    def test_clip_gradient_mask(self):
        x = Tensor([-5.0, 0.5, 5.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_sigmoid_range(self):
        out = Tensor([-100.0, 0.0, 100.0]).sigmoid().data
        assert out[0] >= 0 and out[2] <= 1 and abs(out[1] - 0.5) < 1e-12


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        assert np.allclose(x.grad, np.ones((2, 3)))

    def test_mean_gradient_scaled(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 1.0 / 8.0)

    def test_mean_axis(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert np.allclose(x.mean(axis=0).data, [1.5, 2.5, 3.5])

    def test_max_ties_split_gradient(self):
        x = Tensor([2.0, 2.0, 1.0], requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0.5, 0.5, 0.0])

    def test_max_axis_gradcheck(self):
        rng = np.random.default_rng(1)
        gradcheck(lambda x: x.max(axis=0).sum(), rng.normal(size=(4, 3)))

    def test_min_is_neg_max(self):
        x = Tensor([3.0, -1.0, 2.0], requires_grad=True)
        out = x.min()
        assert out.item() == -1.0
        out.backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])


class TestShapes:
    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        assert x.grad.shape == (6,)

    def test_reshape_accepts_tuple(self):
        assert Tensor(np.arange(6.0)).reshape((3, 2)).shape == (3, 2)

    def test_transpose_grad(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        (x.T * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        assert x.grad.shape == (2, 3)

    def test_expand_squeeze(self):
        x = Tensor(np.arange(3.0), requires_grad=True)
        x.expand_dims(0).squeeze(0).sum().backward()
        assert np.allclose(x.grad, [1, 1, 1])

    def test_flatten(self):
        assert Tensor(np.ones((2, 3))).flatten().shape == (6,)

    def test_getitem_slice_grad(self):
        x = Tensor(np.arange(10.0), requires_grad=True)
        x[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        assert np.allclose(x.grad, expected)

    def test_getitem_fancy_repeated_indices_accumulate(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        x[np.array([0, 0, 1])].sum().backward()
        assert np.allclose(x.grad, [2.0, 1.0, 0.0, 0.0])


class TestStructuralOps:
    def test_concat_axis0_and_axis1(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.zeros((2, 2)), requires_grad=True)
        assert concatenate([a, b], axis=0).shape == (4, 2)
        concatenate([a, b], axis=1).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)

    def test_stack_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        (out * Tensor([[1.0, 2.0], [3.0, 4.0]])).sum().backward()
        assert np.allclose(a.grad, [1.0, 2.0])
        assert np.allclose(b.grad, [3.0, 4.0])

    def test_where_routes_gradients(self):
        cond = np.array([True, False])
        a = Tensor([1.0, 1.0], requires_grad=True)
        b = Tensor([2.0, 2.0], requires_grad=True)
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])

    def test_gather_forward(self):
        x = Tensor(np.arange(8.0).reshape(4, 2))
        out = gather(x, np.array([3, 0]))
        assert np.allclose(out.data, [[6, 7], [0, 1]])

    def test_gather_scatter_adjoint(self):
        x = Tensor(np.arange(8.0).reshape(4, 2), requires_grad=True)
        gather(x, np.array([1, 1, 2])).sum().backward()
        assert np.allclose(x.grad[:, 0], [0, 2, 1, 0])

    def test_segment_sum_forward(self):
        x = Tensor(np.ones((4, 2)))
        out = segment_sum(x, np.array([0, 0, 1, 1]), 2)
        assert np.allclose(out.data, [[2, 2], [2, 2]])

    def test_segment_sum_empty_segment_zero(self):
        x = Tensor(np.ones((2, 1)))
        out = segment_sum(x, np.array([0, 2]), 3)
        assert np.allclose(out.data.ravel(), [1, 0, 1])

    def test_segment_mean_divides_by_count(self):
        x = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = segment_mean(x, np.array([0, 0, 1]), 2)
        assert np.allclose(out.data.ravel(), [3.0, 6.0])

    def test_segment_max_forward_and_grad(self):
        x = Tensor(np.array([[1.0], [5.0], [3.0]]), requires_grad=True)
        out = segment_max(x, np.array([0, 0, 1]), 2)
        assert np.allclose(out.data.ravel(), [5.0, 3.0])
        out.sum().backward()
        assert np.allclose(x.grad.ravel(), [0.0, 1.0, 1.0])

    @given(
        n=st.integers(2, 12),
        segs=st.integers(1, 4),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_segment_sum_equals_loop(self, n, segs, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 3))
        ids = rng.integers(0, segs, size=n)
        out = segment_sum(Tensor(x), ids, segs).data
        for s in range(segs):
            assert np.allclose(out[s], x[ids == s].sum(axis=0))

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_segment_ops_gradcheck(self, seed):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, 3, size=6)
        data = rng.normal(size=(6, 2))
        gradcheck(lambda x: (segment_sum(x, ids, 3) ** 2).sum(), data.copy())
        gradcheck(lambda x: segment_max(x, ids, 3).sum(), data.copy(), tol=1e-4)


class TestNoGrad:
    def test_no_grad_blocks_tape(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_nests(self):
        with no_grad():
            with no_grad():
                pass
            assert not Tensor([1.0], requires_grad=True).requires_grad

    def test_grad_restored_after_context(self):
        with no_grad():
            pass
        assert Tensor([1.0], requires_grad=True).requires_grad


class TestDeepGraphs:
    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        assert np.allclose(x.grad, [1.0])

    def test_diamond_graph_grad(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a * b).backward()  # d/dx 12x^2 = 24x = 48
        assert np.allclose(x.grad, [48.0])
