"""Tests for standard layers: Linear, Embedding, MLP, norms, Bottleneck."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    Bottleneck,
    Dropout,
    Embedding,
    Identity,
    Linear,
    MLP,
    StochNorm1d,
    Tensor,
)


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(4, 3, rng)
        assert layer(Tensor(np.ones((5, 4)))).shape == (5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        assert layer(Tensor(np.zeros((2, 4)))).data.sum() == 0.0

    def test_gradients_reach_weight_and_bias(self, rng):
        layer = Linear(2, 2, rng)
        layer(Tensor(np.ones((3, 2)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_deterministic_init(self):
        a = Linear(4, 4, np.random.default_rng(7))
        b = Linear(4, 4, np.random.default_rng(7))
        assert np.allclose(a.weight.data, b.weight.data)


class TestEmbedding:
    def test_lookup(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        assert np.allclose(out.data[0], out.data[1])

    def test_out_of_range_raises(self, rng):
        emb = Embedding(5, 2, rng)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_per_row(self, rng):
        emb = Embedding(4, 2, rng)
        emb(np.array([0, 0, 2])).sum().backward()
        assert np.allclose(emb.weight.grad[0], 2.0)
        assert np.allclose(emb.weight.grad[2], 1.0)
        assert np.allclose(emb.weight.grad[1], 0.0)


class TestMLP:
    def test_hidden_relu_applied(self, rng):
        mlp = MLP([2, 4, 1], rng)
        assert mlp(Tensor(np.ones((3, 2)))).shape == (3, 1)

    def test_requires_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([3], rng)

    def test_activate_last(self, rng):
        mlp = MLP([2, 2], rng, activate_last=True)
        out = mlp(Tensor(np.random.default_rng(0).normal(size=(10, 2))))
        assert np.all(out.data >= 0)


class TestBatchNorm:
    def test_train_normalizes_batch(self):
        bn = BatchNorm1d(3)
        x = Tensor(np.random.default_rng(0).normal(5.0, 2.0, size=(64, 3)))
        out = bn(x)
        assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_update(self):
        bn = BatchNorm1d(2, momentum=0.5)
        x = Tensor(np.full((8, 2), 10.0))
        bn(x)
        assert np.allclose(bn.running_mean, 5.0)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1d(2)
        bn.set_buffer("running_mean", np.array([1.0, 1.0]))
        bn.set_buffer("running_var", np.array([4.0, 4.0]))
        bn.eval()
        out = bn(Tensor(np.array([[3.0, 3.0]])))
        assert np.allclose(out.data, 1.0, atol=1e-2)

    def test_single_row_uses_running_stats(self):
        bn = BatchNorm1d(2)
        out = bn(Tensor(np.array([[1.0, 2.0]])))
        assert out.shape == (1, 2)

    def test_gamma_beta_trainable(self):
        bn = BatchNorm1d(2)
        bn(Tensor(np.random.default_rng(1).normal(size=(4, 2)))).sum().backward()
        assert bn.gamma.grad is not None and bn.beta.grad is not None


class TestStochNorm:
    def test_eval_matches_batchnorm_eval(self):
        sn = StochNorm1d(3, p=0.5)
        sn.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)))
        out = sn(x)
        assert out.shape == (4, 3)

    def test_p_zero_equals_batch_stats(self):
        rng_data = np.random.default_rng(0).normal(3.0, 1.0, size=(32, 2))
        sn = StochNorm1d(2, p=0.0, rng=np.random.default_rng(1))
        out = sn(Tensor(rng_data))
        assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-6)

    def test_p_one_uses_running_stats(self):
        sn = StochNorm1d(2, p=1.0, rng=np.random.default_rng(1))
        x = Tensor(np.full((8, 2), 4.0))
        out = sn(x)
        # Running stats start at (0, 1): output = gamma*(4-0)/1 + beta = 4.
        assert np.allclose(out.data, 4.0, atol=1e-2)

    def test_running_stats_still_update(self):
        sn = StochNorm1d(2, p=1.0, momentum=0.5, rng=np.random.default_rng(1))
        sn(Tensor(np.full((8, 2), 10.0)))
        assert np.allclose(sn.running_mean, 5.0)


class TestBottleneck:
    def test_zero_init_starts_as_zero_function(self, rng):
        b = Bottleneck(8, 2, rng)
        out = b(Tensor(np.random.default_rng(0).normal(size=(4, 8))))
        assert np.allclose(out.data, 0.0)

    def test_hidden_must_be_smaller(self, rng):
        with pytest.raises(ValueError):
            Bottleneck(4, 4, rng)

    def test_parameter_count_is_small(self, rng):
        d, m = 32, 4
        b = Bottleneck(d, m, rng)
        full = d * d + d
        assert b.num_parameters() == (d * m + m) + (m * d + d)
        assert b.num_parameters() < full / 2

    def test_trains_away_from_zero(self, rng):
        b = Bottleneck(4, 2, rng)
        x = Tensor(np.ones((2, 4)))
        b(x).sum().backward()
        # down-projection receives gradient through the relu path only if
        # up weight nonzero; up weight always receives gradient.
        assert b.up.weight.grad is not None


class TestDropoutModule:
    def test_respects_training_flag(self):
        d = Dropout(0.5, np.random.default_rng(0))
        d.eval()
        out = d(Tensor(np.ones(100)))
        assert np.allclose(out.data, 1.0)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5, np.random.default_rng(0))


class TestIdentityModule:
    def test_passthrough(self):
        x = Tensor([1.0, 2.0])
        assert Identity()(x) is x
