"""Registry-driven gradcheck sweep: the whole op database, every backend.

``repro.nn.ops.OP_REGISTRY`` declares each op once — implementations per
backend, adjoint, tolerances and deterministic sample inputs.  This suite
is the registry's consumer contract:

* **completeness pin** — the registered op and backend sets are asserted
  literally, so adding an op without samples/adjoint (or losing one) is
  a test failure here and a REP008 finding, not silent shrinkage.  The
  literal names double as the REP005 suite-coverage witnesses:
  segment_sum, segment_mean, segment_max, segment_softmax,
  gather_segments, scatter_add, gather, exp, log, sqrt, tanh, sigmoid,
  relu, abs, matmul, concat, lstm_scan.
* **numeric-vs-analytic gradcheck** over every differentiable op ×
  implemented backend × sample input (float64, the policy default);
* **float32 policy leg** — the same samples under ``use_dtype`` must
  track the float64 run within each op's declared ``float32_tol``;
* **cross-backend parity on the samples** within each op's declared
  ``tolerance`` (0.0 = bit-identical), forward and gradient;
* **fallback chain** — the ``compiled`` backend must resolve to its own
  implementation where it registered one and to the ``reduceat``
  implementation everywhere else (on a machine with no C compiler the
  slot stays empty and resolves entirely through the fallback);
* a small **hypothesis leg** replaying adversarial segment layouts
  through the registry dispatchers on every backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, use_backend, use_dtype
from repro.nn.compiled import build as _compiled_build
from repro.nn.ops import OP_REGISTRY
from tests.conftest import gradcheck

pytestmark = pytest.mark.gradcheck_sweep

#: The registered database, pinned literally (see module docstring).
EXPECTED_OPS = {
    "segment_sum", "segment_mean", "segment_max", "segment_softmax",
    "gather_segments", "scatter_add", "gather",
    "exp", "log", "sqrt", "tanh", "sigmoid", "relu", "abs",
    "matmul", "concat", "lstm_scan",
}

BACKENDS = OP_REGISTRY.backends()
DIFFERENTIABLE = sorted(name for name in OP_REGISTRY.ops()
                        if OP_REGISTRY.get(name).differentiable)


class TestRegistryCompleteness:
    def test_op_database_is_pinned(self):
        assert set(OP_REGISTRY.ops()) == EXPECTED_OPS

    def test_backend_sets(self):
        # The compiled backend registers its impls at import only when a
        # system C compiler is discoverable; either way it stays declared.
        if _compiled_build.find_compiler() is not None:
            assert BACKENDS == ("legacy", "reduceat", "compiled")
        else:
            assert BACKENDS == ("legacy", "reduceat")
        assert OP_REGISTRY.declared_backends() == (
            "legacy", "reduceat", "compiled")

    def test_every_entry_is_complete(self):
        for name in OP_REGISTRY.ops():
            entry = OP_REGISTRY.get(name)
            assert entry.adjoint, name
            assert callable(entry.samples), name
            assert len(entry.impls) >= 2 or entry.waiver, name
            for dtype in (np.float64, np.float32):
                samples = entry.samples(dtype)
                assert samples, (name, dtype)
                for sample in samples:
                    assert sample.data.dtype == dtype, (name, sample.label)

    def test_samples_are_deterministic(self):
        for name in OP_REGISTRY.ops():
            entry = OP_REGISTRY.get(name)
            first, second = entry.samples(np.float64), entry.samples(np.float64)
            assert [s.label for s in first] == [s.label for s in second]
            for a, b in zip(first, second):
                assert np.array_equal(a.data, b.data), (name, a.label)


def _run_sample(op_name, backend, sample, dtype_ctx=None):
    """Forward + backward of one sample; returns (out, grad) arrays."""
    dispatch = OP_REGISTRY.dispatcher(op_name)
    with use_backend(backend):
        if dtype_ctx is None:
            x = Tensor(sample.data.copy(), requires_grad=True)
            out = dispatch(x, *sample.args)
            out.backward(np.ones_like(out.data))
        else:
            with dtype_ctx():
                x = Tensor(sample.data.copy(), requires_grad=True)
                out = dispatch(x, *sample.args)
                out.backward(np.ones_like(out.data))
    return out.data.copy(), x.grad.copy()


class TestGradcheckSweep:
    """Numeric-vs-analytic gradients for the whole database."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("op_name", DIFFERENTIABLE)
    def test_float64_gradcheck(self, op_name, backend):
        entry = OP_REGISTRY.get(op_name)
        dispatch = OP_REGISTRY.dispatcher(op_name)
        for sample in entry.samples(np.float64):
            if sample.data.size == 0:
                continue  # finite differencing over zero inputs is vacuous
            with use_backend(backend):
                gradcheck(
                    lambda t, s=sample: dispatch(t, *s.args).sum(),
                    sample.data, tol=entry.gradcheck_tol)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("op_name", DIFFERENTIABLE)
    def test_float32_tracks_float64(self, op_name, backend):
        entry = OP_REGISTRY.get(op_name)
        samples64 = entry.samples(np.float64)
        samples32 = entry.samples(np.float32)
        assert len(samples64) == len(samples32)
        for s64, s32 in zip(samples64, samples32):
            out64, grad64 = _run_sample(op_name, backend, s64)
            out32, grad32 = _run_sample(
                op_name, backend, s32,
                dtype_ctx=lambda: use_dtype("float32"))
            assert out32.dtype == np.float32, (op_name, s32.label)
            assert grad32.dtype == np.float32, (op_name, s32.label)
            tol = entry.float32_tol
            assert np.abs(out32 - out64).max(initial=0.0) <= tol, \
                (op_name, backend, s32.label)
            assert np.abs(grad32 - grad64).max(initial=0.0) <= tol, \
                (op_name, backend, s32.label)


class TestBackendParityOnSamples:
    """Every backend against the reference, within declared tolerance."""

    @pytest.mark.parametrize("op_name", DIFFERENTIABLE)
    def test_differentiable_ops(self, op_name):
        entry = OP_REGISTRY.get(op_name)
        reference = BACKENDS[0]
        for sample in entry.samples(np.float64):
            out_ref, grad_ref = _run_sample(op_name, reference, sample)
            for backend in BACKENDS[1:]:
                out, grad = _run_sample(op_name, backend, sample)
                if entry.tolerance == 0.0:
                    assert np.array_equal(out, out_ref), \
                        (op_name, backend, sample.label)
                    assert np.array_equal(grad, grad_ref), \
                        (op_name, backend, sample.label)
                else:
                    assert np.abs(out - out_ref).max(initial=0.0) \
                        <= entry.tolerance, (op_name, backend, sample.label)
                    assert np.abs(grad - grad_ref).max(initial=0.0) \
                        <= entry.tolerance, (op_name, backend, sample.label)

    def test_scatter_add_forward_parity(self):
        entry = OP_REGISTRY.get("scatter_add")
        assert not entry.differentiable
        dispatch = OP_REGISTRY.dispatcher("scatter_add")
        for sample in entry.samples(np.float64):
            results = {}
            for backend in BACKENDS:
                with use_backend(backend):
                    # Call twice with the *same* index array object: the
                    # second touch engages the plan backend's scatter-plan
                    # LRU, which must stay bit-identical to np.add.at.
                    first = dispatch(sample.data, *sample.args)
                    second = dispatch(sample.data, *sample.args)
                assert np.array_equal(first, second), (backend, sample.label)
                results[backend] = first
            reference = results[BACKENDS[0]]
            for backend in BACKENDS[1:]:
                assert np.array_equal(results[backend], reference), \
                    sample.label


class TestFallbackChain:
    def test_compiled_resolves_direct_impl_or_reduceat(self):
        for op_name in OP_REGISTRY.ops():
            entry = OP_REGISTRY.get(op_name)
            resolved = OP_REGISTRY.resolve(op_name, "compiled")
            if "compiled" in entry.impls:
                assert resolved is entry.impls["compiled"], op_name
            else:
                assert resolved \
                    is OP_REGISTRY.resolve(op_name, "reduceat"), op_name

    def test_compiled_backend_runs_the_fallback(self):
        entry = OP_REGISTRY.get("segment_sum")
        sample = entry.samples(np.float64)[0]
        out_fast, grad_fast = _run_sample("segment_sum", "reduceat", sample)
        with use_backend("compiled"):
            x = Tensor(sample.data.copy(), requires_grad=True)
            out = OP_REGISTRY.dispatcher("segment_sum")(x, *sample.args)
            out.backward(np.ones_like(out.data))
        assert np.array_equal(out.data, out_fast)
        assert np.array_equal(x.grad, grad_fast)


@st.composite
def small_layouts(draw):
    """Adversarial ``(ids, num_segments, seed)`` kept small enough for
    the O(size) finite-difference loop."""
    num_segments = draw(st.integers(1, 5))
    counts = draw(st.lists(st.integers(0, 4),
                           min_size=num_segments, max_size=num_segments))
    ids = np.repeat(np.arange(num_segments), counts)
    seed = draw(st.integers(0, 2 ** 32 - 1))
    np.random.default_rng(seed).shuffle(ids)
    return ids.astype(np.int64), num_segments, seed


class TestFuzzedLayoutsThroughRegistry:
    @given(small_layouts())
    @settings(max_examples=10, deadline=None)
    def test_segment_ops_gradcheck_on_every_backend(self, layout):
        ids, n, seed = layout
        if ids.size == 0:
            return
        data = np.random.default_rng(seed).normal(size=(ids.size, 2))
        for op_name in ("segment_sum", "segment_mean", "segment_max"):
            dispatch = OP_REGISTRY.dispatcher(op_name)
            tol = OP_REGISTRY.get(op_name).gradcheck_tol
            for backend in BACKENDS:
                with use_backend(backend):
                    gradcheck(lambda x: dispatch(x, ids, n).sum(),
                              data, tol=tol)
