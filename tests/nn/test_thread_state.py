"""Context-local execution state: ``no_grad`` / ``use_backend`` across threads.

PR 5 replaced the process-global list-stacks behind ``is_grad_enabled`` and
``active_backend`` with ``contextvars.ContextVar`` state.  These tests pin
the semantics the concurrent serving runtime depends on:

* thread isolation — entering ``no_grad`` / ``use_backend`` in one thread
  never changes what another thread observes;
* fresh threads start from the defaults (grad enabled, fast backend) —
  they do *not* inherit the spawning thread's nesting;
* the public single-thread behaviour (nesting, exception unwind, reuse of
  one context-manager instance) is unchanged.

Plus the repeated-index scatter-plan cache behind ``gather`` /
``__getitem__`` adjoints: bit-identical to ``np.add.at``, hit on repeated
arrays *and* repeated views of one base, bypassed for one-shot arrays,
negative indices and the legacy backend.
"""

import threading

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    active_backend,
    gather,
    is_grad_enabled,
    no_grad,
    scatter_add,
    use_backend,
)
from repro.nn import segment as segment_mod


def run_in_thread(fn):
    """Run ``fn`` in a fresh thread, propagating exceptions and the result."""
    box = {}

    def target():
        try:
            box["result"] = fn()
        except BaseException as err:  # pragma: no cover - assertion carrier
            box["error"] = err

    t = threading.Thread(target=target)
    t.start()
    t.join()
    if "error" in box:
        raise box["error"]
    return box["result"]


class TestGradStateThreadIsolation:
    def test_fresh_thread_defaults_to_grad_enabled(self):
        with no_grad():
            assert not is_grad_enabled()
            assert run_in_thread(is_grad_enabled)  # not inherited
            assert not is_grad_enabled()

    def test_no_grad_in_thread_does_not_leak_out(self):
        entered = threading.Event()
        release = threading.Event()
        observed = {}

        def worker():
            with no_grad():
                entered.set()
                release.wait(timeout=10)
                observed["inside"] = is_grad_enabled()

        t = threading.Thread(target=worker)
        t.start()
        assert entered.wait(timeout=10)
        # Main thread: unaffected while the worker sits inside no_grad.
        assert is_grad_enabled()
        x = Tensor(np.ones(3), requires_grad=True)
        assert (x * 2).requires_grad
        release.set()
        t.join()
        assert observed["inside"] is False

    def test_tensors_built_in_no_grad_thread_do_not_track(self):
        def worker():
            with no_grad():
                x = Tensor(np.ones(3), requires_grad=True)
                return x.requires_grad, (x * 2).requires_grad

        assert run_in_thread(worker) == (False, False)

    def test_many_threads_compose_independently(self):
        barrier = threading.Barrier(8, timeout=10)
        failures = []

        def worker(enable):
            try:
                if enable:
                    barrier.wait()
                    if not is_grad_enabled():
                        failures.append("enabled thread saw disabled state")
                else:
                    with no_grad():
                        barrier.wait()
                        if is_grad_enabled():
                            failures.append("no_grad thread saw enabled state")
            except BaseException as err:  # pragma: no cover
                failures.append(repr(err))

        threads = [threading.Thread(target=worker, args=(i % 2 == 0,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures

    def test_nesting_and_exception_unwind(self):
        assert is_grad_enabled()
        with pytest.raises(RuntimeError):
            with no_grad():
                assert not is_grad_enabled()
                with no_grad():
                    assert not is_grad_enabled()
                    raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_single_instance_reentrant(self):
        guard = no_grad()
        with guard:
            with guard:
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestBackendStateThreadIsolation:
    def test_fresh_thread_defaults_to_fast_backend(self):
        with use_backend("legacy"):
            assert active_backend() == "legacy"
            assert run_in_thread(active_backend) == "reduceat"
        assert active_backend() == "reduceat"

    def test_legacy_thread_does_not_reroute_others(self):
        entered = threading.Event()
        release = threading.Event()

        def worker():
            with use_backend("legacy"):
                entered.set()
                release.wait(timeout=10)
                return active_backend()

        box = {}
        t = threading.Thread(target=lambda: box.update(r=worker()))
        t.start()
        assert entered.wait(timeout=10)
        assert active_backend() == "reduceat"
        release.set()
        t.join()
        assert box["r"] == "legacy"

    def test_single_instance_reentrant_and_nesting(self):
        guard = use_backend("legacy")
        with guard:
            with use_backend("reduceat"):
                assert active_backend() == "reduceat"
                with guard:
                    assert active_backend() == "legacy"
            assert active_backend() == "legacy"
        assert active_backend() == "reduceat"


class TestScatterPlanCache:
    def setup_method(self):
        with segment_mod._scatter_plan_lock:
            segment_mod._scatter_plans.clear()

    def test_scatter_add_matches_add_at_bitwise(self, rng):
        ids = rng.integers(0, 50, size=2000)
        g = rng.normal(size=(2000, 16))
        expected = np.zeros((50, 16))
        np.add.at(expected, ids, g)
        for _ in range(3):  # first call: add.at path; later: cached plan
            assert np.array_equal(scatter_add(g, ids, 50), expected)

    def test_plan_built_on_second_touch_only(self, rng):
        ids = rng.integers(0, 20, size=500)
        g = rng.normal(size=(500, 4))
        scatter_add(g, ids, 20)
        (_, plan), = segment_mod._scatter_plans.values()
        assert plan is None  # first sighting: no plan yet
        scatter_add(g, ids, 20)
        (_, plan), = segment_mod._scatter_plans.values()
        assert plan is not None and plan.num_items == 500

    def test_one_shot_arrays_never_build_plans(self, rng):
        for _ in range(5):
            ids = rng.integers(0, 20, size=100)  # fresh array each time
            scatter_add(rng.normal(size=(100, 2)), ids, 20)
        assert all(plan is None
                   for _, plan in segment_mod._scatter_plans.values())

    def test_repeated_views_of_one_base_hit_one_entry(self, rng):
        base = np.stack([rng.integers(0, 30, size=400)] * 2, axis=1)
        g = rng.normal(size=(400, 8))
        expected = np.zeros((30, 8))
        np.add.at(expected, base[:, 0], g)
        for _ in range(3):  # a *fresh view object* per call, like batch.x[:, 0]
            assert np.array_equal(scatter_add(g, base[:, 0], 30), expected)
        assert len(segment_mod._scatter_plans) == 1
        (_, plan), = segment_mod._scatter_plans.values()
        assert plan is not None

    def test_gather_backward_uses_cache_and_matches_legacy(self, rng):
        weight = rng.normal(size=(40, 8))
        ids = rng.integers(0, 40, size=600)
        g = rng.normal(size=(600, 8))

        def grad_of(backend):
            x = Tensor(weight, requires_grad=True)
            with use_backend(backend):
                gather(x, ids).backward(g)
            return x.grad

        legacy = grad_of("legacy")
        for _ in range(3):
            assert np.array_equal(grad_of("reduceat"), legacy)
        assert any(plan is not None
                   for _, plan in segment_mod._scatter_plans.values())

    def test_getitem_backward_parity_and_fallbacks(self, rng):
        data = rng.normal(size=(25, 4))
        # integer-array, negative-index, slice and bool-mask paths
        indices = (rng.integers(0, 25, size=90),
                   np.array([-1, 3, -5, 3]),
                   slice(2, 11),
                   np.arange(25) % 3 == 0)
        grads = {}
        for backend in ("legacy", "reduceat"):
            with use_backend(backend):
                for index in indices:
                    x = Tensor(data, requires_grad=True)
                    x[index].backward(np.ones_like(x.data[index]))
                    grads.setdefault(backend, []).append(x.grad)
        for a, b in zip(grads["legacy"], grads["reduceat"]):
            assert np.array_equal(a, b)

    def test_legacy_backend_bypasses_cache(self, rng):
        ids = rng.integers(0, 10, size=200)
        with use_backend("legacy"):
            scatter_add(rng.normal(size=(200, 2)), ids, 10)
            scatter_add(rng.normal(size=(200, 2)), ids, 10)
        assert len(segment_mod._scatter_plans) == 0

    def test_dead_base_invalidates_entry(self, rng):
        expected = np.zeros((10, 2))
        ids = np.arange(300) % 10
        g = rng.normal(size=(300, 2))
        np.add.at(expected, ids, g)
        scatter_add(g, ids, 10), scatter_add(g, ids, 10)
        del ids  # plan's base dies; a new array may reuse the id()
        ids2 = (np.arange(300) % 10)[::-1].copy()
        expected2 = np.zeros((10, 2))
        np.add.at(expected2, ids2, g)
        assert np.array_equal(scatter_add(g, ids2, 10), expected2)

    def test_cache_capacity_is_bounded(self, rng):
        keep = [np.arange(50) % 5 for _ in
                range(segment_mod._SCATTER_PLAN_CAPACITY + 40)]
        g = rng.normal(size=(50, 2))
        for ids in keep:
            scatter_add(g, ids, 5)
        assert len(segment_mod._scatter_plans) <= segment_mod._SCATTER_PLAN_CAPACITY

    def test_concurrent_scatter_adds_are_consistent(self, rng):
        ids = rng.integers(0, 40, size=3000)
        g = rng.normal(size=(3000, 8))
        expected = np.zeros((40, 8))
        np.add.at(expected, ids, g)
        failures = []
        barrier = threading.Barrier(6, timeout=10)

        def worker():
            try:
                barrier.wait()
                for _ in range(10):
                    if not np.array_equal(scatter_add(g, ids, 40), expected):
                        failures.append("mismatch")
            except BaseException as err:  # pragma: no cover
                failures.append(repr(err))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
