"""Tests for the module system: registration, traversal, state dicts."""

import numpy as np
import pytest

from repro.nn import Linear, Module, ModuleDict, ModuleList, Parameter, Sequential, Tensor


class Leaf(Module):
    def __init__(self, value=1.0):
        super().__init__()
        self.weight = Parameter(np.array([value]))

    def forward(self, x):
        return x * self.weight


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.a = Leaf(1.0)
        self.b = Leaf(2.0)
        self.scale = Parameter(np.array([3.0]))

    def forward(self, x):
        return self.b(self.a(x)) * self.scale


class TestRegistration:
    def test_parameters_found_recursively(self):
        names = [n for n, _ in Nested().named_parameters()]
        assert set(names) == {"scale", "a.weight", "b.weight"}

    def test_modules_traversal(self):
        mods = dict(Nested().named_modules())
        assert "" in mods and "a" in mods and "b" in mods

    def test_num_parameters(self):
        assert Nested().num_parameters() == 3

    def test_buffers_registered(self):
        m = Module()
        m.register_buffer("stat", np.zeros(3))
        assert any(name == "stat" for name, _ in m.named_buffers())

    def test_set_buffer_unknown_raises(self):
        m = Module()
        with pytest.raises(KeyError):
            m.set_buffer("nope", np.zeros(1))


class TestModes:
    def test_train_eval_propagates(self):
        n = Nested()
        n.eval()
        assert not n.a.training and not n.b.training
        n.train()
        assert n.a.training

    def test_freeze_unfreeze(self):
        n = Nested()
        n.freeze()
        assert all(not p.requires_grad for p in n.parameters())
        n.unfreeze()
        assert all(p.requires_grad for p in n.parameters())

    def test_partial_freeze(self):
        n = Nested()
        n.a.freeze()
        trainable = [name for name, p in n.named_parameters() if p.requires_grad]
        assert "a.weight" not in trainable and "b.weight" in trainable

    def test_zero_grad_clears(self):
        n = Nested()
        out = n(Tensor([1.0]))
        out.backward()
        assert n.scale.grad is not None
        n.zero_grad()
        assert n.scale.grad is None


class TestStateDict:
    def test_roundtrip(self):
        src, dst = Nested(), Nested()
        src.scale.data[:] = 9.0
        dst.load_state_dict(src.state_dict())
        assert dst.scale.data[0] == 9.0

    def test_strict_missing_key_raises(self):
        n = Nested()
        state = n.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            n.load_state_dict(state)

    def test_non_strict_ignores_extra(self):
        n = Nested()
        state = n.state_dict()
        state["ghost"] = np.zeros(1)
        n.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        n = Nested()
        state = n.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            n.load_state_dict(state)

    def test_state_dict_copies_data(self):
        n = Nested()
        state = n.state_dict()
        state["scale"][0] = 123.0
        assert n.scale.data[0] != 123.0

    def test_buffers_in_state_dict(self):
        from repro.nn import BatchNorm1d

        bn = BatchNorm1d(4)
        state = bn.state_dict()
        assert "buffer:running_mean" in state
        bn2 = BatchNorm1d(4)
        state["buffer:running_mean"] = np.full(4, 7.0)
        bn2.load_state_dict(state)
        assert np.allclose(bn2.running_mean, 7.0)


class TestContainers:
    def test_sequential_applies_in_order(self):
        seq = Sequential(Leaf(2.0), Leaf(3.0))
        assert seq(Tensor([1.0])).item() == 6.0

    def test_sequential_len_getitem_iter(self):
        seq = Sequential(Leaf(), Leaf())
        assert len(seq) == 2
        assert isinstance(seq[0], Leaf)
        assert len(list(seq)) == 2

    def test_module_list_registers_params(self):
        ml = ModuleList([Leaf(), Leaf()])
        assert len(ml.parameters()) == 2
        ml.append(Leaf())
        assert len(ml.parameters()) == 3

    def test_module_dict_access(self):
        md = ModuleDict({"x": Leaf(1.0), "y": Leaf(2.0)})
        assert "x" in md
        assert md["y"].weight.data[0] == 2.0
        assert set(md.keys()) == {"x", "y"}
        assert len(md.values()) == 2
        assert len(md.items()) == 2

    def test_parameter_survives_no_grad_construction(self):
        from repro.nn import no_grad

        with no_grad():
            p = Parameter(np.zeros(2))
        assert p.requires_grad
