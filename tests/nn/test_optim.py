"""Tests for optimizers: convergence, weight decay, clipping, skip rules."""

import numpy as np
import pytest

from repro.nn import Adam, Parameter, SGD, Tensor, clip_grad_norm


def quadratic_step(opt, p, target):
    loss = ((p - Tensor(target)) ** 2).sum()
    opt.zero_grad()
    loss.backward()
    opt.step()
    return loss.item()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            last = quadratic_step(opt, p, np.zeros(2))
        assert last < 1e-6

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.array([10.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                losses[momentum] = quadratic_step(opt, p, np.zeros(1))
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        loss = Tensor(0.0) * p  # zero gradient path
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_frozen_params(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        (p * 2.0).backward()
        p.requires_grad = False
        opt.step()
        assert p.data[0] == 1.0

    def test_skips_gradless_params(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()  # no grad -> no change, no crash
        assert p.data[0] == 1.0

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0, 2.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            last = quadratic_step(opt, p, np.array([1.0, 1.0, 1.0]))
        assert last < 1e-6
        assert np.allclose(p.data, 1.0, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        # Bias correction makes the first Adam step ~lr regardless of grad scale.
        p = Parameter(np.array([100.0]))
        opt = Adam([p], lr=0.5)
        quadratic_step(opt, p, np.zeros(1))
        assert abs((100.0 - p.data[0]) - 0.5) < 1e-6

    def test_decoupled_weight_decay(self):
        p = Parameter(np.array([2.0]))
        opt = Adam([p], lr=0.1, weight_decay=0.1)
        (p * Tensor(0.0)).backward()
        opt.step()
        assert p.data[0] < 2.0

    def test_state_tracks_multiple_params(self):
        a, b = Parameter(np.array([1.0])), Parameter(np.array([2.0]))
        opt = Adam([a, b], lr=0.1)
        loss = (a * a).sum() + (b * b).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert a.data[0] < 1.0 and b.data[0] < 2.0


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        norm = clip_grad_norm([p], max_norm=10.0)
        assert abs(norm - 0.5) < 1e-12
        assert p.grad[0] == 0.5

    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm 5
        clip_grad_norm([p], max_norm=1.0)
        assert abs(np.linalg.norm(p.grad) - 1.0) < 1e-9

    def test_handles_missing_grads(self):
        p = Parameter(np.zeros(2))
        assert clip_grad_norm([p], 1.0) == 0.0

    def test_global_norm_across_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad, b.grad = np.array([3.0]), np.array([4.0])
        norm = clip_grad_norm([a, b], max_norm=5.0)
        assert abs(norm - 5.0) < 1e-9
