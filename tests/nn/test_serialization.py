"""Tests for checkpoint save/load."""

import os

import numpy as np

from repro.nn import (
    BatchNorm1d,
    Linear,
    Sequential,
    load_checkpoint,
    load_state_dict,
    save_checkpoint,
    save_state_dict,
)


def test_state_dict_roundtrip(tmp_path, rng):
    model = Sequential(Linear(3, 4, rng), Linear(4, 2, rng))
    path = str(tmp_path / "model.npz")
    save_state_dict(model.state_dict(), path)
    loaded = load_state_dict(path)
    fresh = Sequential(Linear(3, 4, np.random.default_rng(99)), Linear(4, 2, np.random.default_rng(98)))
    fresh.load_state_dict(loaded)
    for (_, a), (_, b) in zip(model.named_parameters(), fresh.named_parameters()):
        assert np.allclose(a.data, b.data)


def test_checkpoint_metadata_roundtrip(tmp_path, rng):
    model = Linear(2, 2, rng)
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(model.state_dict(), {"method": "test", "epochs": 3}, path)
    state, meta = load_checkpoint(path)
    assert meta["method"] == "test" and meta["epochs"] == 3
    assert "weight" in state


def test_checkpoint_without_metadata_file(tmp_path, rng):
    model = Linear(2, 2, rng)
    path = str(tmp_path / "bare.npz")
    save_state_dict(model.state_dict(), path)
    state, meta = load_checkpoint(path)
    assert meta == {} and "weight" in state


def test_buffers_serialized(tmp_path):
    bn = BatchNorm1d(3)
    bn.set_buffer("running_mean", np.array([1.0, 2.0, 3.0]))
    path = str(tmp_path / "bn.npz")
    save_state_dict(bn.state_dict(), path)
    bn2 = BatchNorm1d(3)
    bn2.load_state_dict(load_state_dict(path))
    assert np.allclose(bn2.running_mean, [1.0, 2.0, 3.0])


def test_creates_parent_directories(tmp_path, rng):
    path = str(tmp_path / "a" / "b" / "model.npz")
    save_state_dict(Linear(2, 2, rng).state_dict(), path)
    assert os.path.exists(path)
