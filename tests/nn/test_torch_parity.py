"""Optional differential leg: the op registry vs. PyTorch.

Replays every registered op's deterministic sample inputs through a
hand-written torch equivalent and checks forward values *and* gradients
against the repro autodiff within the op's declared tolerance.  The
whole module is skipped when torch is not installed — the CI image does
not ship it — so this is a free extra oracle on machines that have it,
never a dependency.

The torch equivalents deliberately use small, version-stable ops
(``index_add``, ``bincount``, a per-segment loop for max) rather than
``scatter_reduce``: the samples are tiny and robustness beats speed.
"""

import numpy as np
import pytest

try:
    import torch
except ImportError:  # pragma: no cover - exercised only without torch
    torch = None

pytestmark = pytest.mark.skipif(torch is None, reason="torch not installed")

from repro.nn import Tensor, use_backend  # noqa: E402
from repro.nn.ops import OP_REGISTRY  # noqa: E402

#: forward/grad agreement threshold in float64 (beyond the op's own
#: declared cross-backend tolerance, which is 0 for the exact ops).
ATOL = 1e-9


def _torch_segment_sum(x, ids, n):
    out = torch.zeros((n,) + tuple(x.shape[1:]), dtype=x.dtype)
    return out.index_add(0, ids, x)


def _torch_segment_mean(x, ids, n):
    counts = torch.bincount(ids, minlength=n).clamp(min=1).to(x.dtype)
    if x.dim() > 1:
        counts = counts.reshape((n,) + (1,) * (x.dim() - 1))
    return _torch_segment_sum(x, ids, n) / counts


def _torch_segment_max(x, ids, n):
    rows = []
    for segment in range(n):
        mask = ids == segment
        if bool(mask.any()):
            rows.append(x[mask].max(dim=0).values)
        else:  # empty segments yield zeros, matching the repro kernels
            rows.append(torch.zeros(tuple(x.shape[1:]), dtype=x.dtype))
    return torch.stack(rows)


def _torch_segment_softmax(scores, ids, n):
    # Mirror the repro composition exactly, including the detached max
    # shift and the 1e-16 denominator guard.
    seg_max = _torch_segment_max(scores, ids, n).detach()
    exp = (scores - seg_max[ids]).exp()
    denom = _torch_segment_sum(exp, ids, n)
    return exp / (denom[ids] + 1e-16)


def _torch_gather_rows(x, ids, n=None):
    return x[ids]


_TORCH_OPS = {
    "segment_sum": _torch_segment_sum,
    "segment_mean": _torch_segment_mean,
    "segment_max": _torch_segment_max,
    "segment_softmax": _torch_segment_softmax,
    "gather_segments": _torch_gather_rows,
    "gather": _torch_gather_rows,
    "exp": lambda x: torch.exp(x),
    "log": lambda x: torch.log(x),
    "sqrt": lambda x: torch.sqrt(x),
    "tanh": lambda x: torch.tanh(x),
    "sigmoid": lambda x: torch.sigmoid(x),
    "relu": lambda x: torch.relu(x),
    "abs": lambda x: torch.abs(x),
}

DIFFERENTIABLE = sorted(_TORCH_OPS)


def _torch_args(args):
    return tuple(torch.from_numpy(np.asarray(a)).long()
                 if isinstance(a, np.ndarray) else a for a in args)


def _run_repro(op_name, backend, sample):
    dispatch = OP_REGISTRY.dispatcher(op_name)
    with use_backend(backend):
        x = Tensor(sample.data.copy(), requires_grad=True)
        out = dispatch(x, *sample.args)
        out.backward(np.ones_like(out.data))
    return out.data, x.grad


def _run_torch(op_name, sample):
    x = torch.from_numpy(sample.data.copy()).requires_grad_(True)
    out = _TORCH_OPS[op_name](x, *_torch_args(sample.args))
    out.backward(torch.ones_like(out))
    return out.detach().numpy(), x.grad.numpy()


class TestTorchParity:
    def test_every_differentiable_op_has_a_torch_equivalent(self):
        registered = {name for name in OP_REGISTRY.ops()
                      if OP_REGISTRY.get(name).differentiable}
        assert registered == set(_TORCH_OPS)

    @pytest.mark.parametrize("backend", OP_REGISTRY.backends())
    @pytest.mark.parametrize("op_name", DIFFERENTIABLE)
    def test_forward_and_gradient_match(self, op_name, backend):
        entry = OP_REGISTRY.get(op_name)
        tol = max(entry.tolerance, ATOL)
        for sample in entry.samples(np.float64):
            out_repro, grad_repro = _run_repro(op_name, backend, sample)
            out_torch, grad_torch = _run_torch(op_name, sample)
            assert np.abs(out_repro - out_torch).max(initial=0.0) <= tol, \
                (op_name, backend, sample.label)
            assert np.abs(grad_repro - grad_torch).max(initial=0.0) <= tol, \
                (op_name, backend, sample.label)

    @pytest.mark.parametrize("backend", OP_REGISTRY.backends())
    def test_scatter_add_forward_matches(self, backend):
        entry = OP_REGISTRY.get("scatter_add")
        dispatch = OP_REGISTRY.dispatcher("scatter_add")
        for sample in entry.samples(np.float64):
            with use_backend(backend):
                out_repro = dispatch(sample.data, *sample.args)
            ids, n = sample.args
            out_torch = _torch_segment_sum(
                torch.from_numpy(sample.data.copy()),
                torch.from_numpy(np.asarray(ids)).long(), n).numpy()
            assert np.abs(out_repro - out_torch).max(initial=0.0) <= ATOL, \
                (backend, sample.label)
