"""Cross-module integration tests: the full pre-train -> fine-tune pipeline."""

import numpy as np
import pytest

from repro import S2PGNNFineTuner, SearchConfig
from repro.core.api import FineTuneConfig
from repro.experiments import SMOKE_SCALE, run_strategy, run_vanilla
from repro.finetune import VanillaFineTune, finetune
from repro.gnn import GNNEncoder, GraphPredictionModel
from repro.graph import DOWNSTREAM_DATASETS, load_dataset
from repro.pretrain import get_pretrained


@pytest.fixture(scope="module")
def zoo_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("zoo"))


def pretrained_factory(zoo_dir, method="contextpred"):
    def factory():
        return get_pretrained(
            method, "gin", num_layers=2, emb_dim=12,
            corpus_size=40, epochs=1, cache_dir=zoo_dir, seed=0,
        )
    return factory


class TestEndToEnd:
    def test_pretrain_then_finetune(self, zoo_dir, tiny_dataset):
        encoder = pretrained_factory(zoo_dir)()
        model = GraphPredictionModel(encoder, num_tasks=1, seed=0)
        res = finetune(model, tiny_dataset, strategy=VanillaFineTune(),
                       epochs=3, patience=3, seed=0)
        assert 0.0 <= res.test_score <= 1.0

    def test_s2pgnn_full_pipeline(self, zoo_dir, tiny_dataset):
        tuner = S2PGNNFineTuner(
            pretrained_factory(zoo_dir),
            search_config=SearchConfig(epochs=2, batch_size=16, seed=0),
            finetune_config=FineTuneConfig(epochs=3, patience=3),
        )
        res = tuner.fit(tiny_dataset)
        assert np.isfinite(res.test_score)
        assert tuner.best_spec_ is not None

    @pytest.mark.parametrize("name", DOWNSTREAM_DATASETS)
    def test_every_dataset_trains(self, name, zoo_dir):
        dataset = load_dataset(name, size=40, num_tasks=min(
            4, load_dataset(name, size=40).num_tasks) if name == "toxcast" else None)
        encoder = pretrained_factory(zoo_dir)()
        model = GraphPredictionModel(encoder, num_tasks=dataset.num_tasks, seed=0)
        res = finetune(model, dataset, epochs=2, patience=2, seed=0)
        assert np.isfinite(res.test_score)

    def test_training_beats_untrained_model(self, zoo_dir):
        dataset = load_dataset("bbbp", size=150)
        encoder = pretrained_factory(zoo_dir)()
        model = GraphPredictionModel(encoder, num_tasks=1, seed=0)
        from repro.finetune import evaluate_model

        _, _, test = dataset.split()
        before = evaluate_model(model, test, dataset.info, allow_fallback=True)
        res = finetune(model, dataset, epochs=8, patience=8, seed=0)
        assert res.test_score > max(before, 0.5) - 0.1  # trained ranking is real

    def test_experiment_runner_smoke(self):
        out = run_vanilla("edgepred", "bbbp", scale=SMOKE_SCALE)
        assert {"mean", "std", "seconds_per_epoch", "metric"} <= set(out)

    def test_experiment_runner_strategy_kwargs(self):
        out = run_strategy("last_k", "edgepred", "bbbp", scale=SMOKE_SCALE, k=1)
        assert np.isfinite(out["mean"])


class TestReproducibilityContract:
    def test_zoo_checkpoint_stable_across_calls(self, zoo_dir):
        a = pretrained_factory(zoo_dir)()
        b = pretrained_factory(zoo_dir)()
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_different_methods_give_different_downstream_scores(self, zoo_dir):
        dataset = load_dataset("bbbp", size=60)
        preds = {}
        for method in ["edgepred", "attrmasking"]:
            encoder = pretrained_factory(zoo_dir, method)()
            model = GraphPredictionModel(encoder, num_tasks=1, seed=0)
            finetune(model, dataset, epochs=2, patience=2, seed=0)
            from repro.graph import Batch
            from repro.nn import no_grad

            model.eval()
            with no_grad():
                preds[method] = model(Batch(dataset.graphs[:16])).data.copy()
        # Different pre-training checkpoints must leave different fingerprints.
        assert not np.allclose(preds["edgepred"], preds["attrmasking"])
