"""Tests for Murcko-like scaffolds and the scaffold split."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    MoleculeGenerator,
    murcko_scaffold_nodes,
    scaffold_key,
    scaffold_split,
)


def ring_with_tail():
    """Triangle 0-1-2 plus tail 2-3-4."""
    pairs = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]
    src = [u for u, v in pairs] + [v for u, v in pairs]
    dst = [v for u, v in pairs] + [u for u, v in pairs]
    return Graph(
        x=np.zeros((5, 2), dtype=np.int64),
        edge_index=np.array([src, dst]),
        edge_attr=np.zeros((10, 2), dtype=np.int64),
    )


class TestMurcko:
    def test_strips_tail_keeps_ring(self):
        assert set(murcko_scaffold_nodes(ring_with_tail()).tolist()) == {0, 1, 2}

    def test_acyclic_graph_empty_scaffold(self):
        path = Graph(
            x=np.zeros((3, 2), dtype=np.int64),
            edge_index=np.array([[0, 1, 1, 2], [1, 0, 2, 1]]),
            edge_attr=np.zeros((4, 2), dtype=np.int64),
        )
        assert len(murcko_scaffold_nodes(path)) == 0
        assert scaffold_key(path) == "acyclic"

    def test_linker_between_rings_kept(self):
        # Two triangles connected by a 1-node linker: 0-1-2, 3, 4-5-6.
        pairs = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 6), (6, 4)]
        src = [u for u, v in pairs] + [v for u, v in pairs]
        dst = [v for u, v in pairs] + [u for u, v in pairs]
        g = Graph(
            x=np.zeros((7, 2), dtype=np.int64),
            edge_index=np.array([src, dst]),
            edge_attr=np.zeros((16, 2), dtype=np.int64),
        )
        assert set(murcko_scaffold_nodes(g).tolist()) == {0, 1, 2, 3, 4, 5, 6}

    def test_key_permutation_invariant(self):
        g = ring_with_tail()
        perm = np.array([4, 2, 0, 1, 3])  # relabel nodes
        inv = np.argsort(perm)
        g2 = Graph(
            x=g.x[perm],
            edge_index=inv[g.edge_index],
            edge_attr=g.edge_attr.copy(),
        )
        assert scaffold_key(g) == scaffold_key(g2)

    def test_key_sensitive_to_ring_size(self):
        def cycle(n):
            pairs = [(i, (i + 1) % n) for i in range(n)]
            src = [u for u, v in pairs] + [v for u, v in pairs]
            dst = [v for u, v in pairs] + [u for u, v in pairs]
            return Graph(
                x=np.zeros((n, 2), dtype=np.int64),
                edge_index=np.array([src, dst]),
                edge_attr=np.zeros((2 * n, 2), dtype=np.int64),
            )

        assert scaffold_key(cycle(5)) != scaffold_key(cycle(6))

    def test_key_sensitive_to_atom_types(self):
        a = ring_with_tail()
        b = ring_with_tail()
        b.x[0, 0] = 2  # substitute a ring atom
        assert scaffold_key(a) != scaffold_key(b)

    @given(index=st.integers(0, 60))
    @settings(max_examples=20, deadline=None)
    def test_same_scaffold_id_same_key_modulo_sidechains(self, index):
        # Molecules forced onto the same template share the scaffold subgraph,
        # so their keys must agree.
        gen = MoleculeGenerator(num_scaffolds=6, seed=1)
        a = gen.generate(index, scaffold_id=2)
        b = gen.generate(index + 1000, scaffold_id=2)
        assert scaffold_key(a) == scaffold_key(b)


class TestScaffoldSplit:
    @pytest.fixture(scope="class")
    def graphs(self):
        return MoleculeGenerator(num_scaffolds=10, seed=5).generate_many(120)

    def test_partition_covers_everything(self, graphs):
        tr, va, te = scaffold_split(graphs)
        assert sorted(tr + va + te) == list(range(len(graphs)))

    def test_no_scaffold_leakage(self, graphs):
        tr, va, te = scaffold_split(graphs)
        keys = lambda idx: {graphs[i].meta["scaffold_key"] for i in idx}
        assert not (keys(tr) & keys(te))
        assert not (keys(tr) & keys(va))

    def test_fractions_approximate(self, graphs):
        tr, va, te = scaffold_split(graphs, 0.8, 0.1, 0.1)
        n = len(graphs)
        assert abs(len(tr) / n - 0.8) < 0.15
        assert len(va) > 0 and len(te) > 0

    def test_invalid_fractions_raise(self, graphs):
        with pytest.raises(ValueError):
            scaffold_split(graphs, 0.5, 0.1, 0.1)

    def test_deterministic(self, graphs):
        assert scaffold_split(graphs) == scaffold_split(graphs)

    def test_common_scaffolds_in_train(self, graphs):
        tr, va, te = scaffold_split(graphs)
        from collections import Counter

        counts = Counter(g.meta["scaffold_key"] for g in graphs)
        most_common_key = counts.most_common(1)[0][0]
        assert all(
            graphs[i].meta["scaffold_key"] != most_common_key for i in te
        )
        assert any(graphs[i].meta["scaffold_key"] == most_common_key for i in tr)
