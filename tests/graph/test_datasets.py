"""Tests for the dataset registry and label synthesis."""

import numpy as np
import pytest

from repro.graph import (
    DATASET_REGISTRY,
    DOWNSTREAM_DATASETS,
    load_dataset,
    zinc_corpus,
)


class TestRegistry:
    def test_all_eight_paper_datasets_present(self):
        assert set(DOWNSTREAM_DATASETS) == {
            "bbbp", "tox21", "toxcast", "sider", "clintox", "bace", "esol", "lipo",
        }

    def test_paper_sizes_recorded(self):
        assert DATASET_REGISTRY["bbbp"].paper_size == 2039
        assert DATASET_REGISTRY["tox21"].paper_size == 7831
        assert DATASET_REGISTRY["toxcast"].paper_size == 8575
        assert DATASET_REGISTRY["sider"].paper_size == 1427
        assert DATASET_REGISTRY["clintox"].paper_size == 1478
        assert DATASET_REGISTRY["bace"].paper_size == 1513
        assert DATASET_REGISTRY["esol"].paper_size == 1128
        assert DATASET_REGISTRY["lipo"].paper_size == 4200

    def test_task_counts_match_paper(self):
        expected = {"bbbp": 1, "tox21": 12, "toxcast": 617, "sider": 27,
                    "clintox": 2, "bace": 1, "esol": 1, "lipo": 1}
        for name, tasks in expected.items():
            assert DATASET_REGISTRY[name].num_tasks == tasks

    def test_task_types_and_metrics(self):
        for name in ["esol", "lipo"]:
            info = DATASET_REGISTRY[name]
            assert info.task_type == "regression" and info.metric == "rmse"
        for name in ["bbbp", "bace", "tox21"]:
            info = DATASET_REGISTRY[name]
            assert info.task_type == "classification" and info.metric == "roc_auc"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")


class TestLoading:
    def test_size_override(self):
        assert len(load_dataset("bbbp", size=40)) == 40

    def test_case_insensitive(self):
        assert load_dataset("BBBP", size=40).info.name == "bbbp"

    def test_task_override(self):
        ds = load_dataset("toxcast", size=30, num_tasks=5)
        assert ds.num_tasks == 5
        assert ds.graphs[0].y.shape == (5,)

    def test_caching_returns_same_object(self):
        a = load_dataset("bbbp", size=40)
        b = load_dataset("bbbp", size=40)
        assert a is b

    def test_seed_override_changes_data(self):
        a = load_dataset("bbbp", size=40)
        b = load_dataset("bbbp", size=40, seed=123)
        assert not np.array_equal(a.graphs[0].x, b.graphs[0].x)

    def test_subsample(self):
        ds = load_dataset("bbbp", size=50)
        sub = ds.subsample(20)
        assert len(sub) == 20
        assert ds.subsample(1000) is ds


class TestLabels:
    def test_classification_labels_binary(self):
        ds = load_dataset("bace", size=60)
        ys = np.stack([g.y for g in ds.graphs])
        assert set(np.unique(ys[~np.isnan(ys)])) <= {0.0, 1.0}

    def test_both_classes_present(self):
        ds = load_dataset("bbbp", size=80)
        ys = np.stack([g.y for g in ds.graphs])
        assert 0.1 < np.nanmean(ys) < 0.9

    def test_regression_labels_continuous(self):
        ds = load_dataset("esol", size=60)
        ys = np.stack([g.y for g in ds.graphs])
        assert len(np.unique(ys)) > 10

    def test_multitask_missing_labels(self):
        ds = load_dataset("tox21", size=80)
        ys = np.stack([g.y for g in ds.graphs])
        frac = np.isnan(ys).mean()
        assert 0.05 < frac < 0.3

    def test_single_task_no_missing(self):
        ds = load_dataset("bbbp", size=60)
        ys = np.stack([g.y for g in ds.graphs])
        assert not np.isnan(ys).any()

    def test_labels_are_structure_dependent(self):
        # Labels must correlate with descriptors far above chance: a model
        # cannot learn anything from pure noise.
        from repro.graph import molecule_descriptors

        ds = load_dataset("bace", size=150)
        desc = np.stack([molecule_descriptors(g) for g in ds.graphs])
        y = np.array([g.y[0] for g in ds.graphs])
        # Best single-descriptor point-biserial correlation should be clear.
        z = (desc - desc.mean(0)) / (desc.std(0) + 1e-9)
        corr = np.abs(z[y == 1].mean(0) - z[y == 0].mean(0))
        assert corr.max() > 0.4


class TestSplit:
    def test_split_memoized(self):
        ds = load_dataset("bbbp", size=60)
        a = ds.split()
        b = ds.split()
        # Index lists are memoized, so both calls pick the same graph objects.
        assert a[0][0] is b[0][0] and len(a[2]) == len(b[2])

    def test_split_sizes(self):
        ds = load_dataset("clintox", size=100)
        tr, va, te = ds.split()
        assert len(tr) + len(va) + len(te) == 100
        assert len(tr) > len(va) and len(tr) > len(te)


class TestCorpus:
    def test_zinc_corpus_unlabeled(self):
        corpus = zinc_corpus(size=30)
        assert len(corpus) == 30
        assert all(g.y is None for g in corpus)

    def test_zinc_deterministic(self):
        a = zinc_corpus(size=10, seed=3)
        b = zinc_corpus(size=10, seed=3)
        assert np.array_equal(a[0].x, b[0].x)
