"""Tests for GraphCL augmentations: validity and semantic properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import MASK_ATOM_ID, MoleculeGenerator, transforms


@pytest.fixture(scope="module")
def mol():
    return MoleculeGenerator(num_scaffolds=6, seed=9).generate(0)


ALL_TRANSFORMS = [
    transforms.node_drop,
    transforms.edge_perturb,
    transforms.attribute_mask,
    transforms.subgraph_sample,
]


class TestValidity:
    @pytest.mark.parametrize("fn", ALL_TRANSFORMS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_output_is_valid_graph(self, mol, fn, seed):
        out = fn(mol, np.random.default_rng(seed))
        out.validate()
        assert out.num_nodes >= 1

    @pytest.mark.parametrize("fn", ALL_TRANSFORMS)
    def test_input_not_mutated(self, mol, fn):
        x_before = mol.x.copy()
        e_before = mol.edge_index.copy()
        fn(mol, np.random.default_rng(0))
        assert np.array_equal(mol.x, x_before)
        assert np.array_equal(mol.edge_index, e_before)

    @given(index=st.integers(0, 50), seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_random_augment_always_valid(self, index, seed):
        g = MoleculeGenerator(num_scaffolds=5, seed=6).generate(index)
        out = transforms.random_augment(g, np.random.default_rng(seed))
        out.validate()
        assert out.num_nodes >= 1


class TestSemantics:
    def test_node_drop_reduces_nodes(self, mol):
        out = transforms.node_drop(mol, np.random.default_rng(0), ratio=0.3)
        assert out.num_nodes == max(1, int(round(mol.num_nodes * 0.7)))

    def test_node_drop_edges_within_kept(self, mol):
        out = transforms.node_drop(mol, np.random.default_rng(0), ratio=0.3)
        assert out.num_edges <= mol.num_edges

    def test_edge_perturb_preserves_bond_count(self, mol):
        out = transforms.edge_perturb(mol, np.random.default_rng(0), ratio=0.2)
        # Bond count is approximately preserved (replaced, not only deleted).
        assert abs(out.num_edges - mol.num_edges) <= 2 * 2

    def test_edge_perturb_changes_topology(self, mol):
        out = transforms.edge_perturb(mol, np.random.default_rng(0), ratio=0.4)
        before = set(map(tuple, mol.edge_index.T))
        after = set(map(tuple, out.edge_index.T))
        assert before != after

    def test_attribute_mask_sets_mask_token(self, mol):
        out = transforms.attribute_mask(mol, np.random.default_rng(0), ratio=0.25)
        masked = np.sum(out.x[:, 0] == MASK_ATOM_ID)
        assert masked == max(1, int(round(mol.num_nodes * 0.25)))
        assert out.num_nodes == mol.num_nodes

    def test_subgraph_keeps_connected_region(self, mol):
        import networkx as nx

        out = transforms.subgraph_sample(mol, np.random.default_rng(0), ratio=0.6)
        assert out.num_nodes <= mol.num_nodes
        if out.num_nodes > 1 and out.num_edges > 0:
            assert nx.is_connected(out.to_networkx())

    def test_labels_preserved_through_transforms(self, mol):
        labeled = mol.copy()
        labeled.y = np.array([1.0])
        for fn in ALL_TRANSFORMS:
            out = fn(labeled, np.random.default_rng(0))
            assert out.y is not None and out.y[0] == 1.0
