"""Tests for Batch-level plan caching and its amortization by DataLoader."""

import numpy as np

from repro.graph import Batch, DataLoader
from repro.nn import SegmentPlan


class TestBatchPlanCache:
    def test_edge_plan_cached_and_correct(self, molecules):
        batch = Batch(molecules[:5])
        plan = batch.edge_plan()
        assert plan is batch.edge_plan()  # same object every call
        assert isinstance(plan, SegmentPlan)
        assert plan.num_segments == batch.num_nodes
        assert np.array_equal(plan.segment_ids, batch.edge_index[1])
        assert np.array_equal(plan.counts,
                              np.bincount(batch.edge_index[1],
                                          minlength=batch.num_nodes))

    def test_edge_src_plan_cached_and_correct(self, molecules):
        batch = Batch(molecules[:5])
        plan = batch.edge_src_plan()
        assert plan is batch.edge_src_plan()
        assert plan.num_segments == batch.num_nodes
        assert np.array_equal(plan.segment_ids, batch.edge_index[0])

    def test_node_plan_cached_and_correct(self, molecules):
        batch = Batch(molecules[:5])
        plan = batch.node_plan()
        assert plan is batch.node_plan()
        assert plan.num_segments == batch.num_graphs
        assert np.array_equal(plan.segment_ids, batch.batch)
        assert plan.full  # every graph has at least one node

    def test_gcn_norm_cached_and_matches_bincount(self, molecules):
        batch = Batch(molecules[:5])
        norm = batch.gcn_inv_sqrt_deg()
        assert norm is batch.gcn_inv_sqrt_deg()
        deg = np.bincount(batch.edge_index[1], minlength=batch.num_nodes) + 1.0
        assert np.array_equal(norm, 1.0 / np.sqrt(deg))

    def test_plans_are_lazy(self, molecules):
        batch = Batch(molecules[:3])
        assert batch._edge_plan is None
        assert batch._node_plan is None
        batch.edge_plan()
        assert batch._edge_plan is not None
        assert batch._node_plan is None


class TestLoaderAmortization:
    def test_cached_loader_reuses_plans_across_epochs(self, molecules):
        loader = DataLoader(molecules, batch_size=8, shuffle=True,
                            rng=np.random.default_rng(0), cache=True)
        first = {id(b): (b.edge_plan(), b.node_plan()) for b in loader}
        for _ in range(2):
            for b in loader:
                edge, node = first[id(b)]
                assert b.edge_plan() is edge
                assert b.node_plan() is node

    def test_fresh_loader_rebuilds_batches_and_plans(self, molecules):
        loader = DataLoader(molecules, batch_size=8, cache=False)
        plans_a = [b.edge_plan() for b in loader]
        plans_b = [b.edge_plan() for b in loader]
        assert all(pa is not pb for pa in plans_a for pb in plans_b)
