"""Tests for Graph and Batch containers."""

import numpy as np
import pytest

from repro.graph import Batch, Graph


def simple_graph(n=3, y=None):
    """A path graph 0-1-2 with both edge directions."""
    edge_index = np.array([[0, 1, 1, 2], [1, 0, 2, 1]])
    edge_attr = np.zeros((4, 2), dtype=np.int64)
    x = np.zeros((n, 2), dtype=np.int64)
    return Graph(x=x, edge_index=edge_index, edge_attr=edge_attr, y=y)


class TestGraph:
    def test_counts(self):
        g = simple_graph()
        assert g.num_nodes == 3 and g.num_edges == 4

    def test_num_tasks(self):
        assert simple_graph().num_tasks == 0
        assert simple_graph(y=np.array([1.0, 0.0])).num_tasks == 2

    def test_out_of_range_edge_raises(self):
        with pytest.raises(ValueError):
            Graph(
                x=np.zeros((2, 2)),
                edge_index=np.array([[0], [5]]),
                edge_attr=np.zeros((1, 2)),
            )

    def test_edge_attr_mismatch_raises(self):
        with pytest.raises(ValueError):
            Graph(
                x=np.zeros((2, 2)),
                edge_index=np.array([[0, 1], [1, 0]]),
                edge_attr=np.zeros((1, 2)),
            )

    def test_x_must_be_2d(self):
        with pytest.raises(ValueError):
            Graph(x=np.zeros(3), edge_index=np.zeros((2, 0)), edge_attr=np.zeros((0, 2)))

    def test_degrees(self):
        assert np.array_equal(simple_graph().degrees(), [1, 2, 1])

    def test_is_undirected(self):
        assert simple_graph().is_undirected()
        directed = Graph(
            x=np.zeros((2, 2)),
            edge_index=np.array([[0], [1]]),
            edge_attr=np.zeros((1, 2)),
        )
        assert not directed.is_undirected()

    def test_to_networkx_counts(self):
        g = simple_graph().to_networkx()
        assert g.number_of_nodes() == 3 and g.number_of_edges() == 2

    def test_copy_is_deep(self):
        g = simple_graph(y=np.array([1.0]))
        c = g.copy()
        c.x[0, 0] = 9
        c.y[0] = 0.0
        assert g.x[0, 0] == 0 and g.y[0] == 1.0


class TestBatch:
    def test_disjoint_union_offsets(self, molecules):
        batch = Batch(molecules[:3])
        sizes = [m.num_nodes for m in molecules[:3]]
        assert batch.num_nodes == sum(sizes)
        assert np.array_equal(batch.node_offsets, np.cumsum([0] + sizes))

    def test_batch_vector_assignment(self, molecules):
        batch = Batch(molecules[:3])
        for i, mol in enumerate(molecules[:3]):
            assert np.sum(batch.batch == i) == mol.num_nodes

    def test_edge_indices_shifted_in_range(self, molecules):
        batch = Batch(molecules[:4])
        lo = batch.node_offsets[:-1][batch.batch[batch.edge_index[0]]]
        hi = batch.node_offsets[1:][batch.batch[batch.edge_index[0]]]
        assert np.all(batch.edge_index[0] >= lo) and np.all(batch.edge_index[0] < hi)

    def test_no_cross_graph_edges(self, molecules):
        batch = Batch(molecules[:4])
        assert np.array_equal(
            batch.batch[batch.edge_index[0]], batch.batch[batch.edge_index[1]]
        )

    def test_labels_stacked(self):
        graphs = [simple_graph(y=np.array([float(i)])) for i in range(3)]
        batch = Batch(graphs)
        assert batch.y.shape == (3, 1)
        assert np.allclose(batch.y.ravel(), [0, 1, 2])

    def test_unlabeled_batch_has_no_y(self, molecules):
        assert Batch(molecules[:2]).y is None

    def test_label_mask_and_fill(self):
        graphs = [simple_graph(y=np.array([1.0, np.nan])) for _ in range(2)]
        batch = Batch(graphs)
        assert np.array_equal(batch.label_mask(), [[True, False], [True, False]])
        assert np.allclose(batch.labels_filled(), [[1.0, 0.0], [1.0, 0.0]])

    def test_label_access_without_labels_raises(self, molecules):
        batch = Batch(molecules[:2])
        with pytest.raises(ValueError):
            batch.label_mask()

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            Batch([])

    def test_single_graph_batch(self, molecules):
        batch = Batch([molecules[0]])
        assert batch.num_graphs == 1
        assert np.all(batch.batch == 0)
