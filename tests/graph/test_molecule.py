"""Tests for the synthetic molecule generator (valence, determinism, scaffolds)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    ATOM_VALENCES,
    BOND_ORDER,
    DESCRIPTOR_DIM,
    NUM_ATOM_TAGS,
    NUM_ATOM_TYPES,
    NUM_BOND_TYPES,
    MoleculeGenerator,
    molecule_descriptors,
)


@pytest.fixture(scope="module")
def generator():
    return MoleculeGenerator(num_scaffolds=12, seed=0)


class TestGeneration:
    def test_deterministic_per_index(self, generator):
        a = generator.generate(5)
        b = MoleculeGenerator(num_scaffolds=12, seed=0).generate(5)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.edge_index, b.edge_index)
        assert np.array_equal(a.edge_attr, b.edge_attr)

    def test_different_indices_differ(self, generator):
        a, b = generator.generate(0), generator.generate(1)
        assert a.num_nodes != b.num_nodes or not np.array_equal(a.x, b.x)

    def test_different_seeds_differ(self):
        a = MoleculeGenerator(num_scaffolds=12, seed=0).generate(0)
        b = MoleculeGenerator(num_scaffolds=12, seed=1).generate(0)
        assert a.num_nodes != b.num_nodes or not np.array_equal(a.x, b.x)

    def test_undirected(self, generator):
        for i in range(10):
            assert generator.generate(i).is_undirected()

    def test_attribute_ranges(self, generator):
        for i in range(10):
            g = generator.generate(i)
            assert g.x[:, 0].max() < NUM_ATOM_TYPES
            assert g.x[:, 1].max() < NUM_ATOM_TAGS
            assert g.edge_attr[:, 0].max() < NUM_BOND_TYPES

    @given(index=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_valence_never_exceeded(self, index):
        g = MoleculeGenerator(num_scaffolds=10, seed=2).generate(index)
        order_used = np.zeros(g.num_nodes, dtype=np.int64)
        for (u, v), attr in zip(g.edge_index.T, g.edge_attr):
            if u < v:
                order_used[u] += BOND_ORDER[attr[0]]
                order_used[v] += BOND_ORDER[attr[0]]
        assert np.all(order_used <= ATOM_VALENCES[g.x[:, 0]])

    @given(index=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_connected(self, index):
        import networkx as nx

        g = MoleculeGenerator(num_scaffolds=10, seed=4).generate(index)
        assert nx.is_connected(g.to_networkx())

    def test_scaffold_id_recorded(self, generator):
        g = generator.generate(3)
        assert 0 <= g.meta["scaffold_id"] < 12

    def test_forced_scaffold_id(self, generator):
        g = generator.generate(3, scaffold_id=7)
        assert g.meta["scaffold_id"] == 7

    def test_scaffold_distribution_is_skewed(self, generator):
        mols = generator.generate_many(300)
        counts = np.bincount([m.meta["scaffold_id"] for m in mols], minlength=12)
        assert counts[0] > counts[-1]  # Zipf skew: rank-0 scaffold dominates

    def test_contains_rings(self, generator):
        import networkx as nx

        mols = generator.generate_many(20)
        assert all(len(nx.cycle_basis(m.to_networkx())) >= 1 for m in mols)

    def test_generate_many_matches_individual(self, generator):
        batch = generator.generate_many(3, start=10)
        assert np.array_equal(batch[0].x, generator.generate(10).x)


class TestDescriptors:
    def test_dimension_constant(self, generator):
        d = molecule_descriptors(generator.generate(0))
        assert d.shape == (DESCRIPTOR_DIM,)

    def test_deterministic(self, generator):
        g = generator.generate(1)
        assert np.allclose(molecule_descriptors(g), molecule_descriptors(g))

    def test_atom_counts_correct(self, generator):
        g = generator.generate(2)
        d = molecule_descriptors(g)
        assert np.allclose(d[:NUM_ATOM_TYPES], np.bincount(g.x[:, 0], minlength=NUM_ATOM_TYPES))

    def test_size_feature(self, generator):
        g = generator.generate(3)
        d = molecule_descriptors(g)
        # First "extra" slot holds num_nodes.
        offset = DESCRIPTOR_DIM - 6
        assert d[offset] == g.num_nodes

    def test_ring_count_nonnegative(self, generator):
        for i in range(10):
            d = molecule_descriptors(generator.generate(i))
            assert d[DESCRIPTOR_DIM - 5] >= 0
