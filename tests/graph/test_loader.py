"""Tests for the DataLoader."""

import numpy as np
import pytest

from repro.graph import Batch, DataLoader


class TestDataLoader:
    def test_batch_count(self, molecules):
        loader = DataLoader(molecules, batch_size=8)
        assert len(loader) == (len(molecules) + 7) // 8
        assert len(list(loader)) == len(loader)

    def test_last_batch_partial(self, molecules):
        loader = DataLoader(molecules[:10], batch_size=4)
        batches = list(loader)
        assert batches[-1].num_graphs == 2

    def test_drop_last(self, molecules):
        loader = DataLoader(molecules[:10], batch_size=4, drop_last=True)
        batches = list(loader)
        assert len(batches) == 2
        assert all(b.num_graphs == 4 for b in batches)

    def test_no_shuffle_preserves_order(self, molecules):
        loader = DataLoader(molecules, batch_size=len(molecules))
        batch = next(iter(loader))
        assert np.array_equal(batch.x, Batch(molecules).x)

    def test_shuffle_changes_order_between_epochs(self, molecules):
        loader = DataLoader(molecules, batch_size=len(molecules), shuffle=True,
                            rng=np.random.default_rng(0))
        first = next(iter(loader)).x.copy()
        second = next(iter(loader)).x.copy()
        assert not np.array_equal(first, second)

    def test_shuffle_deterministic_given_rng(self, molecules):
        a = DataLoader(molecules, batch_size=4, shuffle=True, rng=np.random.default_rng(1))
        b = DataLoader(molecules, batch_size=4, shuffle=True, rng=np.random.default_rng(1))
        assert np.array_equal(next(iter(a)).x, next(iter(b)).x)

    def test_all_graphs_covered_each_epoch(self, molecules):
        loader = DataLoader(molecules, batch_size=7, shuffle=True)
        total = sum(b.num_graphs for b in loader)
        assert total == len(molecules)

    def test_invalid_batch_size(self, molecules):
        with pytest.raises(ValueError):
            DataLoader(molecules, batch_size=0)
