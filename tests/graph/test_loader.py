"""Tests for the DataLoader."""

import numpy as np
import pytest

from repro.graph import Batch, DataLoader


class TestDataLoader:
    def test_batch_count(self, molecules):
        loader = DataLoader(molecules, batch_size=8)
        assert len(loader) == (len(molecules) + 7) // 8
        assert len(list(loader)) == len(loader)

    def test_last_batch_partial(self, molecules):
        loader = DataLoader(molecules[:10], batch_size=4)
        batches = list(loader)
        assert batches[-1].num_graphs == 2

    def test_drop_last(self, molecules):
        loader = DataLoader(molecules[:10], batch_size=4, drop_last=True)
        batches = list(loader)
        assert len(batches) == 2
        assert all(b.num_graphs == 4 for b in batches)

    def test_no_shuffle_preserves_order(self, molecules):
        loader = DataLoader(molecules, batch_size=len(molecules))
        batch = next(iter(loader))
        assert np.array_equal(batch.x, Batch(molecules).x)

    def test_shuffle_changes_order_between_epochs(self, molecules):
        loader = DataLoader(molecules, batch_size=len(molecules), shuffle=True,
                            rng=np.random.default_rng(0))
        first = next(iter(loader)).x.copy()
        second = next(iter(loader)).x.copy()
        assert not np.array_equal(first, second)

    def test_shuffle_deterministic_given_rng(self, molecules):
        a = DataLoader(molecules, batch_size=4, shuffle=True, rng=np.random.default_rng(1))
        b = DataLoader(molecules, batch_size=4, shuffle=True, rng=np.random.default_rng(1))
        assert np.array_equal(next(iter(a)).x, next(iter(b)).x)

    def test_all_graphs_covered_each_epoch(self, molecules):
        loader = DataLoader(molecules, batch_size=7, shuffle=True)
        total = sum(b.num_graphs for b in loader)
        assert total == len(molecules)

    def test_invalid_batch_size(self, molecules):
        with pytest.raises(ValueError):
            DataLoader(molecules, batch_size=0)


def assert_batches_equal(a, b):
    assert np.array_equal(a.x, b.x)
    assert np.array_equal(a.edge_index, b.edge_index)
    assert np.array_equal(a.edge_attr, b.edge_attr)
    assert np.array_equal(a.batch, b.batch)
    if a.y is None or b.y is None:
        assert a.y is None and b.y is None
    else:
        assert np.array_equal(a.y, b.y)


class TestCachedDataLoader:
    def test_cached_batches_byte_identical_to_fresh_collation(self, molecules):
        """Every batch a cached loader yields — across two shuffled epochs
        with the same RNG — is byte-identical to collating its graphs fresh."""
        loader = DataLoader(molecules, batch_size=8, shuffle=True,
                            rng=np.random.default_rng(4), cache=True)
        for _ in range(2):
            for cached in loader:
                fresh = Batch([molecules[i] for i in cached.indices])
                assert_batches_equal(cached, fresh)

    def test_collates_each_batch_exactly_once(self, molecules):
        loader = DataLoader(molecules, batch_size=8, shuffle=True, cache=True)
        for _ in range(3):
            list(loader)
        assert loader.num_collations == len(loader)

    def test_fresh_mode_recollates_every_epoch(self, molecules):
        loader = DataLoader(molecules, batch_size=8, shuffle=True)
        for _ in range(3):
            list(loader)
        assert loader.num_collations == 3 * len(loader)

    def test_epochs_reuse_same_batch_objects(self, molecules):
        loader = DataLoader(molecules, batch_size=8, shuffle=True, cache=True)
        first = {id(b) for b in loader}
        second = {id(b) for b in loader}
        assert first == second

    def test_shuffle_permutes_batch_order(self, molecules):
        loader = DataLoader(molecules, batch_size=4, shuffle=True,
                            rng=np.random.default_rng(0), cache=True)
        epochs = [[id(b) for b in loader] for _ in range(4)]
        assert any(e != epochs[0] for e in epochs[1:])

    def test_no_shuffle_matches_uncached_loader(self, molecules):
        cached = DataLoader(molecules, batch_size=8, cache=True)
        fresh = DataLoader(molecules, batch_size=8)
        for a, b in zip(cached, fresh, strict=True):
            assert_batches_equal(a, b)

    def test_drop_last(self, molecules):
        loader = DataLoader(molecules[:10], batch_size=4, drop_last=True, cache=True)
        batches = list(loader)
        assert len(batches) == 2
        assert all(b.num_graphs == 4 for b in batches)

    def test_all_graphs_covered_each_epoch(self, molecules):
        loader = DataLoader(molecules, batch_size=7, shuffle=True, cache=True)
        covered = np.sort(np.concatenate([b.indices for b in loader]))
        assert np.array_equal(covered, np.arange(len(molecules)))

    def test_invalidate_cache_recollates(self, molecules):
        loader = DataLoader(molecules, batch_size=8, cache=True)
        list(loader)
        loader.invalidate_cache()
        list(loader)
        assert loader.num_collations == 2 * len(loader)

    def test_batch_indices_recorded(self, molecules):
        loader = DataLoader(molecules, batch_size=8, cache=True)
        batch = next(iter(loader))
        assert np.array_equal(batch.indices, np.arange(8))
        # Direct construction leaves indices unset.
        assert Batch(molecules[:3]).indices is None
