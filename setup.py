"""Setuptools entry point.

The execution environment is offline and lacks the ``wheel`` package, so the
PEP-660 editable path (which shells out to ``bdist_wheel``) is unavailable.
``pip install -e . --no-use-pep517`` (or ``python setup.py develop``) uses the
legacy editable install, which works with plain setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'Search to Fine-tune Pre-trained Graph Neural "
        "Networks for Graph-level Tasks' (S2PGNN, ICDE 2024) on a from-scratch "
        "numpy GNN stack"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
)
